(** The Technique-1 machinery of Section 3: a collection of shifted grids
    (Lemma 2.1 with s = 2eps/sqrt(d), Delta = eps^2) where every non-empty
    cell carries Theta(eps^-2 log n) points sampled uniformly from the
    cell's circumsphere (radius eps). The structure maintains, for every
    sample point, a depth value under ball insertions and deletions.

    Invariant: a cell is materialized iff at least one live ball
    intersects it (a reference count tracks this), so the cell created at
    a ball's insertion has seen every live ball that intersects it — the
    maintained depth of a sample counts exactly the live balls that both
    (a) intersect the sample's cell and (b) contain the sample point.
    This may undercount the true depth at the sample (a ball can contain
    a circumsphere point without touching the cell box), which is safe:
    maintained depth is always an achievable depth, and the analysis
    (Lemmas 3.1-3.3) only needs the balls covering the optimum, all of
    which intersect the optimum's cell.

    Each cell caches its max-depth sample (refreshed for free during the
    per-update sample scan); the dynamic structure indexes cells, not
    samples, in its lazy heap.

    Parallel construction: every grid of the shifted collection owns
    disjoint state — its own hash table, its own rng stream (derived
    with [Rng.split_at] keyed by the grid index, so a grid's samples
    depend only on the operations applied to that grid) and its own
    id/cell counters. The [*_in_grid] operations therefore commute
    across distinct grids and may run on different domains
    concurrently, with no locks, producing bit-identical state for any
    domain count. Hooks must not be registered while building in
    parallel (static solvers never register one). *)

type sample = {
  id : int;
  pos : Maxrs_geom.Point.t;
  mutable depth : float;
  mutable flag : int;  (** colored MaxRS: last color counted; -1 initially *)
  mutable version : int;  (** bumped on every depth change / cell removal *)
}

type cell

type t

val create : dim:int -> cfg:Config.t -> expected_n:int -> t
(** Build the (empty) grid collection; [expected_n] sets the per-cell
    sample count for this epoch. *)

val dim : t -> int
val samples_per_cell : t -> int
val grid_count : t -> int
val cell_count : t -> int
val sample_count : t -> int

val cell_max : cell -> float
(** Cached maximum sample depth of the cell ([neg_infinity] once the cell
    has been dropped). *)

val cell_best : cell -> sample
(** A sample attaining {!cell_max}. *)

val cell_version : cell -> int
(** Bumped whenever the cell's max/argmax changes or the cell is
    dropped — lazy-heap staleness check. *)

val cell_uid : cell -> int
(** A stable unique identifier (the first sample's id): a deterministic
    function of the per-grid operation history, so it survives
    {!state}/{!restore} round trips. Used as a total-order tie-breaking
    key by the dynamic structure's heap. *)

val grid_of_cell : t -> cell -> int
(** Index of the grid the cell belongs to (recovered from its uid) —
    lets a sharded owner route a changed cell to the heap of the shard
    owning its grid. *)

val cell_count_in_grid : t -> grid:int -> int
(** Live cells materialized in one grid of the collection. *)

val on_cell_change : t -> (cell -> unit) -> unit
(** Register a hook invoked whenever a cell's cached max changes (or the
    cell is dropped). *)

val insert : t -> center:Maxrs_geom.Point.t -> weight:float -> unit
(** Insert a unit ball: materialize missing cells (sampling their
    circumspheres), bump cell refcounts, add [weight] to the depth of
    every sample of an intersected cell that lies inside the ball. *)

val insert_in_grid :
  t -> grid:int -> center:Maxrs_geom.Point.t -> weight:float -> unit
(** {!insert} restricted to one grid of the shifted collection; calls
    for distinct grids touch disjoint state and may run concurrently.
    [insert t] is equivalent to [insert_in_grid t ~grid:gi] for every
    [gi]. *)

val touch_colored_in_grid :
  t -> grid:int -> center:Maxrs_geom.Point.t -> color:int -> unit
(** {!touch_colored} restricted to one grid (same contract as
    {!insert_in_grid}). *)

val best_in_grid : t -> grid:int -> sample option
(** Max-depth sample among the live cells of one grid (ties broken by
    that grid's table iteration order, which is deterministic for a
    fixed operation sequence on the grid). *)

val delete : t -> center:Maxrs_geom.Point.t -> weight:float -> unit
(** Reverse of {!insert}; drops cells whose refcount reaches zero. *)

val delete_in_grid :
  t -> grid:int -> center:Maxrs_geom.Point.t -> weight:float -> unit
(** {!delete} restricted to one grid (same disjoint-state contract as
    {!insert_in_grid}). *)

val insert_with : t -> center:Maxrs_geom.Point.t -> f:(sample -> float) -> unit
(** Generic insertion: bump refcounts of the cells intersected by the
    unit ball at [center] and add [f sample] to the depth of every
    sample of those cells lying inside the ball (a return of 0 leaves
    the sample untouched). Lets callers maintain custom depth notions
    (e.g. the streaming colored monitor's incidence sets). *)

val touch_colored : t -> center:Maxrs_geom.Point.t -> color:int -> unit
(** Colored variant of {!insert} (Section 3.2): for every sample of an
    intersected cell lying inside the ball, if [flag <> color] set the
    flag and increment the depth by 1. Balls must be fed grouped by
    color. Also maintains refcounts/materialization like {!insert}. *)

val best : t -> sample option
(** Linear scan over cells for a sample of maximum depth (static
    algorithms). *)

val iter_samples : t -> (sample -> unit) -> unit
val iter_live_cells : t -> (cell -> unit) -> unit

val iter_live_cells_in_grid : t -> grid:int -> (cell -> unit) -> unit
(** {!iter_live_cells} restricted to one grid — per-shard lazy-heap
    compaction walks only the cells of the grids the shard owns. *)

val validate : t -> live:Maxrs_geom.Point.t list -> bool
(** Test support: given the centers of the currently live balls, check
    the structural invariants — the materialized cells are exactly the
    cells intersected by a live ball, each with the correct reference
    count, and every cached cell max matches its samples. *)

(** Exact serializable state (durability layer). The capture is
    canonical — cells sorted by key, every mutable float copied
    bit-for-bit — so behaviourally identical structures produce
    structurally equal states. *)
module State : sig
  type sample_s = {
    s_id : int;
    s_pos : float array;
    s_depth : float;
    s_flag : int;
    s_version : int;
  }

  type cell_s = {
    cs_key : int array;
    cs_nballs : int;
    cs_version : int;
    cs_max : float;
    cs_best : int;  (** index into [cs_samples] *)
    cs_samples : sample_s array;
  }

  type grid_s = { gs_rng : int64; gs_next_id : int; gs_cells : cell_s list }
  type t = { st_dim : int; st_samples_per_cell : int; st_grids : grid_s array }
end

val state : t -> State.t
(** Deep canonical copy of all mutable state (rng streams, id counters,
    cells, samples). The structure may continue evolving afterwards. *)

val restore : cfg:Config.t -> State.t -> t
(** Rebuild a structure whose future behaviour is identical to the
    captured one's. The grid collection is re-derived from [cfg], which
    must be the config the captured structure was built with; raises
    [Invalid_argument] when the state is inconsistent with it. No hook
    is registered on the restored structure. *)
