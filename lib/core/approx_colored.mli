(** (1 - eps)-approximate colored disk MaxRS in R^2 — Theorem 1.6,
    expected time O(eps^-2 n log n), via color sampling (Section 4.4).

    Pipeline: estimate opt with Theorem 1.5 at eps = 1/4 (giving
    opt' in [opt/4, opt] w.h.p.); if opt' is below the c1 eps^-2 log n
    threshold run the exact output-sensitive algorithm on everything
    (its n * opt term is then ~ eps^-2 n log n); otherwise sample each
    color independently with probability lambda = c1 log n / (eps^2 opt')
    and run the exact algorithm on the sampled disks. Lemma 4.8 shows the
    deepest sampled point is (1 - eps)-optimal w.h.p. *)

type strategy =
  | Exact_small  (** opt' below threshold: exact algorithm on all disks *)
  | Sampled of {
      lambda : float;  (** per-color sampling probability *)
      colors_sampled : int;
      disks_sampled : int;
    }

type result = {
  x : float;
  y : float;
  depth : int;  (** true colored depth of (x, y) w.r.t. the full input *)
  estimate : int;  (** the Theorem-1.5 estimate opt' used *)
  strategy : strategy;
}

val solve :
  ?radius:float ->
  ?epsilon:float ->
  ?c1:float ->
  ?seed:int ->
  ?estimate_cfg:Config.t ->
  ?max_shifts:int ->
  ?domains:int ->
  (float * float) array ->
  colors:int array ->
  result
(** [epsilon] in (0, 1), default 0.25; [c1] default 1.0 (the paper's
    "sufficiently large constant" — larger sharpens the probability at
    the cost of a bigger sample). [max_shifts] is forwarded to the exact
    algorithm's grid collection. [domains] sizes the parallel execution
    layer for both the Theorem-1.5 estimate and the exact runs (default:
    [MAXRS_DOMAINS], else 1); results are bit-identical for any domain
    count. Requires a non-empty input.

    Raises {!Maxrs_resilience.Guard.Error} on malformed input
    (non-positive/non-finite radius, epsilon outside (0, 1),
    non-positive c1, empty input, non-finite coordinates, negative
    colors, length mismatch). *)

val solve_checked :
  ?radius:float ->
  ?epsilon:float ->
  ?c1:float ->
  ?seed:int ->
  ?estimate_cfg:Config.t ->
  ?max_shifts:int ->
  ?domains:int ->
  ?budget:Maxrs_resilience.Budget.t ->
  (float * float) array ->
  colors:int array ->
  (result Maxrs_resilience.Outcome.t, Maxrs_resilience.Guard.error)
  Stdlib.result
(** Validated entry. The [budget] bounds the exact output-sensitive
    stage(s) of the pipeline; on expiry the answer is [Partial] — its
    depth is still re-evaluated against the full input (achievable at
    (x, y)), but the (1 - eps) guarantee no longer holds. *)
