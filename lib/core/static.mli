(** Static MaxRS for d-balls — Theorem 1.2: a randomized (1/2 - eps)-
    approximation in O(eps^{-2d-2} n log n) time, avoiding the
    log^{Theta(d)} n blowup of sampling-based (1 - eps) schemes. *)

type result = {
  center : Maxrs_geom.Point.t;  (** placement for the query ball *)
  value : float;  (** witnessed covered weight (achievable; w.h.p. at
                      least (1/2 - eps) * opt) *)
}

val solve :
  ?cfg:Config.t ->
  ?radius:float ->
  dim:int ->
  (Maxrs_geom.Point.t * float) array ->
  result option
(** [solve ~dim pts] with [pts] an array of (point, weight >= 0) pairs.
    [None] only when no circumsphere sample lands in any ball (tiny
    inputs); callers may fall back to placing the ball on any input
    point, which covers at least that point.

    Raises {!Maxrs_resilience.Guard.Error} on malformed input
    (non-positive/non-finite radius, [dim < 1], dimension mismatches,
    non-finite coordinates, negative or non-finite weights). *)

val solve_checked :
  ?cfg:Config.t ->
  ?radius:float ->
  dim:int ->
  (Maxrs_geom.Point.t * float) array ->
  (result option, Maxrs_resilience.Guard.error) Stdlib.result
(** {!solve} with the same validation reported as a structured error
    instead of an exception. *)

val solve_unchecked :
  ?cfg:Config.t ->
  ?radius:float ->
  dim:int ->
  (Maxrs_geom.Point.t * float) array ->
  result option
(** The validation-free path behind {!solve_checked}: identical
    computation, no input scan. For callers whose input is already
    validated or generated; behaviour on non-finite coordinates or
    negative weights is unspecified. *)

val solve_store :
  ?cfg:Config.t -> ?radius:float -> Maxrs_geom.Pstore.t -> result option
(** Columnar entry: {!solve_unchecked} directly over a weighted
    {!Maxrs_geom.Pstore} (dimension taken from the store). Bit-identical
    to the array path on equivalent input — the array entries are thin
    adapters over this core. Trusted input, like {!solve_unchecked}. *)

val solve_or_point :
  ?cfg:Config.t ->
  ?radius:float ->
  dim:int ->
  (Maxrs_geom.Point.t * float) array ->
  result
(** Like {!solve} but falls back to the heaviest input point (covering at
    least itself). Requires a non-empty input. *)
