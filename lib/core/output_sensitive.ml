module Grid = Maxrs_geom.Grid
module Kern = Maxrs_geom.Kern
module Pstore = Maxrs_geom.Pstore
module Shifted_grids = Maxrs_geom.Shifted_grids
module Rng = Maxrs_geom.Rng
module Colored_depth = Maxrs_union.Colored_depth
module Colored_disk2d = Maxrs_sweep.Colored_disk2d
module Obs = Maxrs_obs.Obs
module Parallel = Maxrs_parallel.Parallel
module Guard = Maxrs_resilience.Guard
module Budget = Maxrs_resilience.Budget
module Outcome = Maxrs_resilience.Outcome

(* Theorem 4.6's O(n log n + n·opt) bound is checked against
   [os.sweep_events]; cells/disks record the grid-bucketing volume after
   the Lemma 4.3 corner trim. Added once per solve from the merged
   per-grid tallies, so the hot per-cell loop carries no
   instrumentation. *)
let c_os_cells = Obs.counter "os.cells"
let c_os_disks = Obs.counter "os.disks"
let c_os_events = Obs.counter "os.sweep_events"

type stats = {
  shifts : int;
  cells_processed : int;
  disks_after_trim : int;
  sweep_events : int;
}

type result = { x : float; y : float; depth : int; stats : stats }

(* Everything one grid of the shifted collection contributes: its best
   placement and its share of the statistics. Grids are independent, so
   these are computed in parallel and merged in grid-index order, which
   reproduces the sequential scan exactly. [g_expired] marks a grid
   whose scan was cut short by the deadline. *)
type grid_result = {
  g_depth : int;
  g_x : float;
  g_y : float;
  g_cells : int;
  g_disks : int;
  g_events : int;
  g_expired : bool;
}

exception Out_of_time

let solve_grid ~budget pts colors grid =
  let n = Array.length pts in
  let empty =
    {
      g_depth = 0;
      g_x = fst pts.(0);
      g_y = snd pts.(0);
      g_cells = 0;
      g_disks = 0;
      g_events = 0;
      g_expired = false;
    }
  in
  if Budget.expired budget then { empty with g_expired = true }
  else begin
    (* Bucket disks by the grid cells they intersect. Each bucket is a
       flat index buffer; legacy consed the indices onto a list, so a
       bucket was read in descending index order — downstream consumers
       (the witness tie-breaks of the per-cell sweep) see that order, so
       every bucket traversal below runs back-to-front. The odometer
       scratch is shared across the n disks of this grid: zero
       allocation per (disk, cell) pair. *)
    let buckets : Kern.Ibuf.t Grid.Tbl.t = Grid.Tbl.create (4 * n) in
    let klo = [| 0; 0 |] and khi = [| 0; 0 |] and kbuf = [| 0; 0 |] in
    let cen = [| 0.; 0. |] in
    Array.iteri
      (fun i (x, y) ->
        cen.(0) <- x;
        cen.(1) <- y;
        Grid.iter_keys_intersecting_into grid ~lo:klo ~hi:khi ~key:kbuf
          ~center:cen ~radius:1. (fun key ->
            match Grid.Tbl.find buckets key with
            | b -> Kern.Ibuf.push b i
            | exception Not_found ->
                let b = Kern.Ibuf.create 8 in
                Kern.Ibuf.push b i;
                Grid.Tbl.add buckets (Array.copy key) b))
      pts;
    let trim = Kern.Ibuf.create 64 in
    let acc = ref empty in
    (* The per-cell sweeps dominate; poll the budget between cells and
       abandon the rest of this grid's cells on expiry (one cell of
       overshoot at most). *)
    (try
       Grid.Tbl.iter
         (fun key idxs ->
           if Budget.expired budget then raise_notrace Out_of_time;
           (* Lemma 4.3: drop disks containing no corner of the cell.
              The corner coordinates replicate [Grid.cell_box]
              ([origin + k*side], [+ side]); membership is a disjunction
              over the four corners, so testing them inline in any order
              equals the old [List.exists] over [Box.corners]. *)
           let lox = grid.Grid.origin.(0) +. (float_of_int key.(0) *. grid.Grid.side) in
           let loy = grid.Grid.origin.(1) +. (float_of_int key.(1) *. grid.Grid.side) in
           let hix = lox +. grid.Grid.side and hiy = loy +. grid.Grid.side in
           Kern.Ibuf.clear trim;
           let m = Kern.Ibuf.length idxs in
           for s = m - 1 downto 0 do
             let i = Kern.Ibuf.get idxs s in
             let x, y = Array.unsafe_get pts i in
             let hit cx cy =
               (((cx -. x) ** 2.) +. ((cy -. y) ** 2.)) <= 1. +. 1e-12
             in
             if hit lox loy || hit lox hiy || hit hix loy || hit hix hiy then
               Kern.Ibuf.push trim i
           done;
           let nt = Kern.Ibuf.length trim in
           if nt > 0 then begin
             let sub_centers =
               Array.init nt (fun j -> pts.(Kern.Ibuf.get trim j))
             in
             let sub_colors =
               Array.init nt (fun j -> colors.(Kern.Ibuf.get trim j))
             in
             let r =
               Colored_depth.max_colored_depth ~radius:1. sub_centers
                 ~colors:sub_colors
             in
             let a = !acc in
             acc :=
               {
                 g_depth =
                   (if r.Colored_depth.depth > a.g_depth then
                      r.Colored_depth.depth
                    else a.g_depth);
                 g_x =
                   (if r.Colored_depth.depth > a.g_depth then
                      r.Colored_depth.x
                    else a.g_x);
                 g_y =
                   (if r.Colored_depth.depth > a.g_depth then
                      r.Colored_depth.y
                    else a.g_y);
                 g_cells = a.g_cells + 1;
                 g_disks = a.g_disks + nt;
                 g_events =
                   a.g_events + r.Colored_depth.stats.Colored_depth.events;
                 g_expired = a.g_expired;
               }
           end)
         buckets
     with Out_of_time -> acc := { !acc with g_expired = true });
    !acc
  end

let solve_unchecked ?(radius = 1.) ?max_shifts ?(seed = 0x4f53) ?domains
    ?(budget = Budget.unlimited) centers ~colors =
  Obs.with_span "output_sensitive.solve" @@ fun () ->
  (* Work with unit disks. *)
  let pts = Array.map (fun (x, y) -> (x /. radius, y /. radius)) centers in
  let grids =
    match max_shifts with
    | None -> Shifted_grids.make ~dim:2 ~side:1. ~delta:0.25 ()
    | Some cap ->
        Shifted_grids.make ~cap ~rng:(Rng.create seed) ~dim:2 ~side:1.
          ~delta:0.25 ()
  in
  let garr = grids.Shifted_grids.grids in
  let merged =
    Parallel.with_pool ~domains:(Parallel.resolve domains) (fun pool ->
        Parallel.map_reduce pool ~n:(Array.length garr)
          ~map:(fun gi -> solve_grid ~budget pts colors garr.(gi))
          ~reduce:(fun a g ->
            {
              g_depth = (if g.g_depth > a.g_depth then g.g_depth else a.g_depth);
              g_x = (if g.g_depth > a.g_depth then g.g_x else a.g_x);
              g_y = (if g.g_depth > a.g_depth then g.g_y else a.g_y);
              g_cells = a.g_cells + g.g_cells;
              g_disks = a.g_disks + g.g_disks;
              g_events = a.g_events + g.g_events;
              g_expired = a.g_expired || g.g_expired;
            })
          {
            g_depth = 0;
            g_x = fst pts.(0);
            g_y = snd pts.(0);
            g_cells = 0;
            g_disks = 0;
            g_events = 0;
            g_expired = false;
          })
  in
  (* Re-evaluate against the full input: the per-cell depth is computed
     on a subset, so in exact arithmetic this can only confirm or
     improve it. The re-evaluated value is the one reported — never the
     raw cell count, which on ill-conditioned inputs can exceed what
     the witness point actually achieves — keeping every answer
     (including deadline-cut ones) achievable at the reported point.
     O(n), so it runs even when the budget is spent. *)
  let depth =
    Colored_disk2d.colored_depth_at ~radius:1. pts ~colors merged.g_x
      merged.g_y
  in
  Obs.add c_os_cells merged.g_cells;
  Obs.add c_os_disks merged.g_disks;
  Obs.add c_os_events merged.g_events;
  let result =
    {
      x = merged.g_x *. radius;
      y = merged.g_y *. radius;
      depth;
      stats =
        {
          shifts = Shifted_grids.count grids;
          cells_processed = merged.g_cells;
          disks_after_trim = merged.g_disks;
          sweep_events = merged.g_events;
        };
    }
  in
  if merged.g_expired then Outcome.Partial result else Outcome.Complete result

let solve_store ?radius ?max_shifts ?seed ?domains ?budget store =
  if Pstore.dims store <> 2 then
    invalid_arg "Output_sensitive.solve_store: store must be planar";
  let xs = Pstore.col store 0 and ys = Pstore.col store 1 in
  let centers =
    Array.init (Pstore.length store) (fun i ->
        (Maxrs_geom.Fvec.get xs i, Maxrs_geom.Fvec.get ys i))
  in
  solve_unchecked ?radius ?max_shifts ?seed ?domains ?budget centers
    ~colors:(Pstore.colors store)

let solve_checked ?radius ?max_shifts ?seed ?domains ?budget centers ~colors =
  let cols = colors in
  (* rebound: [open Guard] below shadows [colors] *)
  let open Guard in
  let check =
    let* () =
      positive ~field:"radius" (Option.value ~default:1. radius)
    in
    let* () = non_empty ~field:"centers" centers in
    let* () = planar_points ~field:"centers" centers in
    length_matches ~field:"colors" ~expected:(Array.length centers) cols
  in
  Result.map
    (fun () ->
      solve_unchecked ?radius ?max_shifts ?seed ?domains ?budget centers
        ~colors:cols)
    check

let solve ?radius ?max_shifts ?seed ?domains centers ~colors =
  Outcome.value
    (Guard.ok_exn
       (solve_checked ?radius ?max_shifts ?seed ?domains centers ~colors))
