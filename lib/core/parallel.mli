(** Shared-memory parallel execution on a small fixed-size pool of
    stdlib [Domain]s (OCaml 5, no external dependencies).

    A pool of size [d] owns [d - 1] worker domains; the calling domain
    always participates in every job, so [d = 1] is a true sequential
    fallback: everything runs inline on the caller, no domains are
    spawned and no locks are taken on the work path.

    Determinism contract: chunk boundaries depend only on the problem
    size and the chunk count, and {!map} / {!map_reduce} place or combine
    per-index results in index order — so for bodies that are independent
    across indices, output is bit-identical for every pool size. Jobs
    must not invoke pool operations on the pool running them (no
    nesting on the same pool). *)

type pool

val default_domains : unit -> int
(** Domain count from the [MAXRS_DOMAINS] environment variable (clamped
    to [\[1, 128]]); 1 when unset or unparsable. Read once, then cached. *)

val resolve : int option -> int
(** [resolve (Some d)] is [d] (clamped); [resolve None] is
    {!default_domains}[ ()]. The idiom for [?domains] arguments. *)

val create : int -> pool
(** [create d] spawns [d - 1] worker domains. Pools are cheap but not
    free (~100us/domain): reuse one across jobs when convenient, or use
    {!with_pool} per call. Raises [Invalid_argument] if [d < 1]. *)

val shutdown : pool -> unit
(** Stop and join all workers. The pool must be idle (no job running).
    Idempotent. *)

val with_pool : domains:int -> (pool -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts
    it down, even if [f] raises. *)

val size : pool -> int
(** Total participant count (workers + caller). *)

val participant : unit -> int
(** Identity of the participant running the calling domain: 0 on a
    pool's caller (and outside any pool), [1..size-1] on its workers.
    Observational only — chunk placement and results never depend on
    it; the sharded store uses it to count off-home executions. *)

(** {1 Fault tolerance}

    A chunk whose execution raises is retried once in place, and if it
    fails again the chunk is re-executed sequentially on the caller
    after the parallel drain (degrade-to-sequential). Chunk boundaries
    and merge order never change, so recovery preserves the
    bit-identical determinism contract. Injected faults (below) fire
    {e before} the chunk body starts and are therefore always safe to
    retry; genuine body exceptions are retried only when the body is
    declared idempotent, and are otherwise re-raised on the caller
    after all participants finish (remaining chunks skipped). *)

exception Injected_fault
(** The deterministic fault thrown by the injection hook. Never escapes
    a pool combinator: it either triggers a retry or sequential
    recovery. *)

(** Deterministic fault injection, for exercising the recovery path in
    tests and CI. Enabled by [MAXRS_FAULTS=<seed>:<rate>] (read once at
    startup) or programmatically via {!configure}. Whether a given
    (job, chunk, attempt) faults — throw, or brief stall then throw —
    is a pure function of the seed, so a faulty schedule is exactly
    reproducible. Sequential runs ([size = 1] pools or single-chunk
    jobs) never inject, preserving a clean baseline to compare
    against. *)
module Faults : sig
  type config = { seed : int; rate : float }

  val of_string : string -> config option
  (** Parse ["<seed>:<rate>"], e.g. ["42:0.3"]. [None] on malformed
      input; rate clamped to [\[0, 1\]]. *)

  val configure : config -> unit
  val disable : unit -> unit
  val enabled : unit -> bool
  val current : unit -> config option

  val injected_count : unit -> int
  (** Faults fired since start (or {!reset_counters}). *)

  val retried_count : unit -> int
  (** Chunks retried in place after a first failure. *)

  val recovered_count : unit -> int
  (** Chunks re-executed sequentially on the caller. *)

  val reset_counters : unit -> unit
end

val parallel_for :
  ?chunks:int -> ?idempotent:bool -> pool -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body i] for every [i] in
    [\[0, n)], split into chunks pulled by the participants. The body
    must be safe to run concurrently for distinct indices.
    [idempotent] (default [false]) declares that a chunk of [body]
    calls may safely run more than once (e.g. pure writes to
    per-index slots), enabling retry of genuine body exceptions; when
    [false], a genuine exception skips the remaining chunks and the
    first one is re-raised on the caller after all participants
    finish. Injected faults are recovered either way. *)

val map : pool -> n:int -> (int -> 'a) -> 'a array
(** [map pool ~n f] is [\[| f 0; ...; f (n-1) |\]], computed in
    parallel. Slot [i] always holds [f i]: deterministic for pure [f]
    regardless of pool size. *)

val map_chunks :
  ?chunks:int -> pool -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_chunks pool ~n f] splits [\[0, n)] into contiguous chunks and
    returns per-chunk results in chunk order. Note: the default chunk
    count depends on the pool size, so only pass results to
    order-insensitive merges unless [?chunks] is fixed explicitly. *)

val map_reduce :
  pool -> n:int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> 'b -> 'b
(** [map_reduce pool ~n ~map ~reduce init] computes [map i] for every
    index in parallel, then folds with [reduce] sequentially in index
    order on the caller — identical to
    [Array.fold_left reduce init (Array.init n map)] for pure [map],
    for any pool size. *)
