module Rng = Maxrs_geom.Rng
module Colored_rect2d = Maxrs_sweep.Colored_rect2d
module Guard = Maxrs_resilience.Guard

type strategy =
  | Exact_small
  | Sampled of { lambda : float; colors_sampled : int; disks_sampled : int }

type result = {
  x : float;
  y : float;
  depth : int;
  estimate : int;
  strategy : strategy;
}

let estimate_opt ~width ~height centers ~colors =
  (* Distinct colors per aligned width x height grid cell. Any placed
     rectangle meets at most 4 cells (its corners land in at most 4), so
     the densest cell carries at least opt/4 distinct colors; and a cell
     is itself a legal placement, so the estimate never exceeds opt. *)
  let cells : (int * int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun i (x, y) ->
      let key =
        ( int_of_float (Float.floor (x /. width)),
          int_of_float (Float.floor (y /. height)) )
      in
      let set =
        match Hashtbl.find_opt cells key with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.add cells key s;
            s
      in
      Hashtbl.replace set colors.(i) ())
    centers;
  Hashtbl.fold (fun _ set acc -> Int.max acc (Hashtbl.length set)) cells 0

let solve_unchecked ?(width = 1.) ?(height = 1.) ?(epsilon = 0.25) ?(c1 = 1.0)
    ?(seed = 0x7ec7) centers ~colors =
  let n = Array.length centers in
  let opt' = estimate_opt ~width ~height centers ~colors in
  let threshold = c1 /. (epsilon ** 2.) *. log (float_of_int (Int.max n 2)) in
  let finish ~strategy (r : Colored_rect2d.result) =
    let depth =
      Colored_rect2d.colored_depth_at ~width ~height centers ~colors
        r.Colored_rect2d.x r.Colored_rect2d.y
    in
    { x = r.Colored_rect2d.x; y = r.Colored_rect2d.y; depth;
      estimate = opt'; strategy }
  in
  if float_of_int opt' <= threshold then
    finish ~strategy:Exact_small
      (Colored_rect2d.max_colored ~width ~height centers ~colors)
  else begin
    let lambda =
      Float.min 1.
        (c1 *. log (float_of_int n) /. (epsilon ** 2. *. float_of_int opt'))
    in
    let rng = Rng.create seed in
    let distinct = List.sort_uniq compare (Array.to_list colors) in
    let rec draw tries =
      let chosen = Hashtbl.create 64 in
      List.iter
        (fun c -> if Rng.bernoulli rng lambda then Hashtbl.replace chosen c ())
        distinct;
      if Hashtbl.length chosen > 0 || tries > 20 then chosen
      else draw (tries + 1)
    in
    let chosen = draw 0 in
    if Hashtbl.length chosen = 0 then
      finish ~strategy:Exact_small
        (Colored_rect2d.max_colored ~width ~height centers ~colors)
    else begin
      let idx = ref [] in
      for i = n - 1 downto 0 do
        if Hashtbl.mem chosen colors.(i) then idx := i :: !idx
      done;
      let idx = Array.of_list !idx in
      let sub_centers = Array.map (fun i -> centers.(i)) idx in
      let sub_colors = Array.map (fun i -> colors.(i)) idx in
      let r =
        Colored_rect2d.max_colored ~width ~height sub_centers
          ~colors:sub_colors
      in
      finish
        ~strategy:
          (Sampled
             {
               lambda;
               colors_sampled = Hashtbl.length chosen;
               disks_sampled = Array.length idx;
             })
        r
    end
  end

let solve_checked ?width ?height ?epsilon ?c1 ?seed centers ~colors =
  let cols = colors in
  (* rebound: [open Guard] below shadows [colors] *)
  let open Guard in
  let check =
    let* () = positive ~field:"width" (Option.value ~default:1. width) in
    let* () = positive ~field:"height" (Option.value ~default:1. height) in
    let* () =
      in_open_range ~field:"epsilon" ~lo:0. ~hi:1.
        (Option.value ~default:0.25 epsilon)
    in
    let* () = positive ~field:"c1" (Option.value ~default:1.0 c1) in
    let* () = non_empty ~field:"centers" centers in
    let* () = planar_points ~field:"centers" centers in
    length_matches ~field:"colors" ~expected:(Array.length centers) cols
  in
  Result.map
    (fun () ->
      solve_unchecked ?width ?height ?epsilon ?c1 ?seed centers ~colors:cols)
    check

let solve ?width ?height ?epsilon ?c1 ?seed centers ~colors =
  Guard.ok_exn (solve_checked ?width ?height ?epsilon ?c1 ?seed centers ~colors)
