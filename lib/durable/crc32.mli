(** CRC-32 (IEEE 802.3) — the checksum guarding every WAL record and
    snapshot payload. Values are in [0, 2^32). *)

val of_string : string -> int
val of_bytes : bytes -> int

val of_substring : string -> pos:int -> len:int -> int
(** Raises [Invalid_argument] on an out-of-bounds range. *)
