(* Sharded WAL layout: a shard manifest at the session's base path plus
   one ordinary WAL per shard beside it.

   {v
     <base>           manifest: magic "MXSHRD01" | u32le crc32 | payload
                      payload = shards | dim | radius | cfg | base_seq
     <base>.shard<k>  standard Wal file of shard k's op subsequence
   v}

   The manifest is written atomically (tmp + fsync + rename) and LAST
   at creation time — it is the commit point: a crash before the rename
   leaves no manifest, so recovery never sees a half-created layout.
   Because every shard log's own params frame also records
   [base_seq] (and the shard files are enumerable), the manifest is
   mostly a layout marker: a corrupt manifest is rebuilt from the shard
   headers rather than failing recovery.

   Sharded ops carry their global sequence number explicitly
   ([Wal.Sinsert]/[Wal.Sdelete]), because each shard log holds only a
   subsequence. Recovery scans all shard logs (in parallel — scans are
   read-only and independent) and merges them back into the global
   order, keeping the longest contiguous sequence prefix: an op past a
   gap (its predecessor lost to a torn/corrupt record in some {e other}
   shard's log) is dropped even though its own frame is intact, exactly
   as if the crash had happened one op earlier. That rule makes
   parallel multi-log recovery land on the same bit-identical prefix
   contract as the single-log session. *)

module Config = Maxrs.Config
module Parallel = Maxrs_parallel.Parallel

let magic = "MXSHRD01"
let shard_path base k = Printf.sprintf "%s.shard%d" base k

(* Shard files present on disk: the consecutive run from 0 (shard logs
   are only ever created as a full set). *)
let shard_files_present base =
  let rec go k = if Sys.file_exists (shard_path base k) then go (k + 1) else k in
  go 0

type manifest = {
  shards : int;
  dim : int;
  radius : float;
  cfg : Config.t;
  base_seq : int;
}

let encode_manifest m =
  let payload =
    let b = Buffer.create 64 in
    Codec.int_ b m.shards;
    Codec.int_ b m.dim;
    Codec.f64 b m.radius;
    Codec.config b m.cfg;
    Codec.int_ b m.base_seq;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 12) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int (Crc32.of_string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let write_manifest path m =
  let tmp = path ^ ".tmp" in
  let data = Bytes.of_string (encode_manifest m) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Wal.write_all fd data;
      Unix.fsync fd);
  Sys.rename tmp path

type manifest_result =
  | Manifest of manifest
  | No_manifest  (** no file at the path *)
  | Not_manifest  (** a file exists but is not a shard manifest *)
  | Corrupt_manifest  (** right magic, damaged payload *)

let read_manifest path =
  if not (Sys.file_exists path) then No_manifest
  else
    let data =
      In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
    in
    if String.length data < 12 || String.sub data 0 8 <> magic then
      Not_manifest
    else
      let crc = Int32.to_int (String.get_int32_le data 8) land 0xFFFFFFFF in
      let payload = String.sub data 12 (String.length data - 12) in
      if Crc32.of_string payload <> crc then Corrupt_manifest
      else
        match
          Codec.protect
            (fun r ->
              let shards = Codec.r_int r in
              let dim = Codec.r_int r in
              let radius = Codec.r_f64 r in
              let cfg = Codec.r_config r in
              let base_seq = Codec.r_int r in
              if not (Codec.at_end r) then
                Codec.malformed "trailing bytes in manifest";
              { shards; dim; radius; cfg; base_seq })
            payload
        with
        | Ok m when m.shards >= 1 && m.dim >= 1 && m.base_seq >= 0 ->
            Manifest m
        | Ok _ | Error _ -> Corrupt_manifest

(* {1 Parallel scan} *)

(* One shard log's scan, reduced to what the merge needs. A shard whose
   log is missing, empty, torn at the header, or inconsistent with the
   session base contributes no records but does not abort recovery: the
   merged-prefix rule charges the damage against the global sequence
   instead. *)
type shard_scan = { scan : Wal.scan option; damaged : string option }

let scan_shard base k ~base_seq =
  match Wal.scan (shard_path base k) with
  | Wal.Scan sc when sc.Wal.params.Wal.base_seq = base_seq ->
      { scan = Some sc; damaged = None }
  | Wal.Scan sc ->
      {
        scan = None;
        damaged =
          Some
            (Printf.sprintf
               "shard %d: log base %d does not match session base %d" k
               sc.Wal.params.Wal.base_seq base_seq);
      }
  | Wal.No_file ->
      { scan = None; damaged = Some (Printf.sprintf "shard %d: log missing" k) }
  | Wal.Empty_file | Wal.Torn_header ->
      {
        scan = None;
        damaged = Some (Printf.sprintf "shard %d: unreadable log header" k);
      }
  | Wal.Foreign_file ->
      { scan = None; damaged = Some (Printf.sprintf "shard %d: foreign file" k) }

(* Scan every shard log concurrently on a scratch pool. Scans are pure
   reads of distinct files, so any interleaving yields the same array;
   [Parallel.map] places results by index. *)
let scan_all base ~shards ~base_seq ~domains =
  Parallel.with_pool ~domains (fun pool ->
      Parallel.map pool ~n:shards (fun k -> scan_shard base k ~base_seq))

(* {1 Merging}

   Merge the per-shard scans back into global sequence order and find
   the longest contiguous prefix [base_seq+1 .. seq_end]. *)

type merged_op = { seq : int; shard : int; record : Wal.record }

type merged = {
  seq_end : int;
  ops : merged_op list;  (** contiguous prefix ops, ascending seq *)
  checks : (int * int) list;
      (** (seq, state_crc) fingerprints with seq <= seq_end, ascending *)
  keep : (int * int) array;
      (** per shard: (valid-prefix bytes, records kept) for the reopen *)
  dropped : int;  (** intact op records beyond the contiguous prefix *)
  corruption : string option;
}

(* Offset of the byte just past the header (magic + params frame),
   derived from the deterministic frame encoding — where a reopen cuts
   a shard whose every record is dropped. *)
let header_end (sc : Wal.scan) =
  match sc.Wal.records with
  | [] -> sc.Wal.valid_bytes
  | r0 :: _ ->
      if Array.length sc.Wal.offsets = 0 then sc.Wal.valid_bytes
      else sc.Wal.offsets.(0) - Wal.record_size r0

let record_seq = function
  | Wal.Sinsert { seq; _ } | Wal.Sdelete { seq; _ } | Wal.Check { seq; _ } ->
      Some seq
  | Wal.Insert _ | Wal.Delete _ | Wal.Epoch _ -> None

let merge ~base_seq (scans : shard_scan array) =
  (* Collect every sequenced record; a solo-format (unsequenced) record
     inside a shard log means the file was written by something else —
     stop trusting that shard's records at that point. *)
  let all = ref [] in
  let malformed = ref None in
  Array.iteri
    (fun k s ->
      match s.scan with
      | None -> ()
      | Some sc ->
          let trusted = ref true in
          List.iteri
            (fun i r ->
              if !trusted then
                match record_seq r with
                | Some seq -> all := { seq; shard = k; record = r } :: !all
                | None ->
                    trusted := false;
                    if !malformed = None then
                      malformed :=
                        Some
                          (Printf.sprintf
                             "shard %d: unsequenced record at index %d" k i))
            sc.Wal.records)
    scans;
  let all = List.stable_sort (fun a b -> Int.compare a.seq b.seq) (List.rev !all) in
  let is_check op = match op.record with Wal.Check _ -> true | _ -> false in
  (* Pass 1: the contiguous op-seq run. Check records share the seq of
     the op they follow (base_seq right after a rewrite) and never
     advance the run. *)
  let seq_end = ref base_seq in
  let prefix = ref [] in
  let dropped = ref 0 in
  let dup = ref None in
  List.iter
    (fun op ->
      if not (is_check op) then
        if op.seq = !seq_end + 1 then begin
          seq_end := op.seq;
          prefix := op :: !prefix
        end
        else if op.seq <= !seq_end then begin
          if !dup = None then
            dup :=
              Some
                (Printf.sprintf "duplicate op seq %d (shard %d)" op.seq
                   op.shard)
        end
        else incr dropped)
    all;
  let seq_end = !seq_end in
  (* Pass 2: fingerprints that fall inside the recovered prefix. *)
  let checks =
    List.filter_map
      (fun op ->
        match op.record with
        | Wal.Check { seq; state_crc } when seq <= seq_end ->
            Some (seq, state_crc)
        | _ -> None)
      all
    |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* Keep boundary per shard: the prefix of its records whose seq is
     within the merged prefix. Seqs in one shard log are nondecreasing,
     so this is a clean cut. *)
  let keep =
    Array.map
      (fun s ->
        match s.scan with
        | None -> (0, 0)
        | Some sc ->
            let m = ref 0 and i = ref 0 in
            List.iter
              (fun r ->
                (match record_seq r with
                | Some seq when seq <= seq_end && !i = !m -> m := !i + 1
                | Some _ | None -> ());
                incr i)
              sc.Wal.records;
            let bytes =
              if !m = 0 then header_end sc else sc.Wal.offsets.(!m - 1)
            in
            (bytes, !m))
      scans
  in
  let first_damage =
    Array.fold_left
      (fun acc s -> match acc with Some _ -> acc | None -> s.damaged)
      None scans
  in
  let first_scan_corruption =
    let c = ref None and k = ref 0 in
    Array.iter
      (fun s ->
        (match (s.scan, !c) with
        | Some sc, None -> (
            match sc.Wal.corruption with
            | Some cc ->
                c :=
                  Some
                    (Printf.sprintf "shard %d: %s" !k
                       (Wal.corruption_to_string cc))
            | None -> ())
        | _ -> ());
        incr k)
      scans;
    !c
  in
  let corruption =
    List.find_map Fun.id [ !dup; !malformed; first_damage; first_scan_corruption ]
  in
  {
    seq_end;
    ops = List.rev !prefix;
    checks;
    keep;
    dropped = !dropped;
    corruption;
  }
