(** Little-endian binary codec for WAL records and {!Maxrs.Dynamic}
    state snapshots.

    Floats travel as IEEE-754 bit patterns, so encode/decode round
    trips are byte-identical and recovered structures answer with the
    exact same bits as the originals. All decoders raise {!Malformed}
    on structural problems (truncation, bad tags, absurd lengths) —
    never [Invalid_argument] or an allocation blow-up. *)

exception Malformed of string

val malformed : ('a, unit, string, 'b) format4 -> 'a
(** [malformed fmt ...] raises {!Malformed} with a formatted message. *)

(** {1 Primitive encoders} — append to a [Buffer.t]. *)

val u8 : Buffer.t -> int -> unit
val i64 : Buffer.t -> int64 -> unit
val int_ : Buffer.t -> int -> unit
val f64 : Buffer.t -> float -> unit
val bool_ : Buffer.t -> bool -> unit
val opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val float_array : Buffer.t -> float array -> unit
val int_array : Buffer.t -> int array -> unit

val fvec : Buffer.t -> Maxrs_geom.Fvec.t -> unit
(** Same wire format as {!float_array} (length, then one little-endian
    IEEE-754 bit pattern per slot), written as a single byte run filled
    straight from the flat {!Maxrs_geom.Fvec.t} column. Interchangeable
    with {!float_array} on the wire: either decoder reads either
    encoder's output. *)

(** {1 Primitive decoders} — consume from a cursor over a string. *)

type reader = { data : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val at_end : reader -> bool
val r_u8 : reader -> int
val r_i64 : reader -> int64
val r_int : reader -> int
val r_f64 : reader -> float
val r_bool : reader -> bool
val r_opt : (reader -> 'a) -> reader -> 'a option
val r_float_array : reader -> string -> float array
val r_int_array : reader -> string -> int array
val r_fvec : reader -> string -> Maxrs_geom.Fvec.t

val r_len : ?elem_bytes:int -> reader -> string -> int
(** Read and validate a collection length: non-negative, below the
    global cap, and small enough that [n * elem_bytes] (default 1, the
    minimum encoded size of one element) still fits in the remaining
    input. Rejecting here means a corrupt or adversarial length field
    fails cleanly {e before} any allocation proportional to it. *)

(** {1 Domain codecs} *)

val config : Buffer.t -> Maxrs.Config.t -> unit
val r_config : reader -> Maxrs.Config.t
val state : Buffer.t -> Maxrs.Dynamic.State.t -> unit
val r_state : reader -> Maxrs.Dynamic.State.t

val encode_state : Maxrs.Dynamic.State.t -> string
(** Whole-state convenience wrapper. Because {!Maxrs.Dynamic.state} is
    canonical (sorted balls, sorted cells), two structures with equal
    observable state encode to equal strings — tests use this as a
    fingerprint for bit-identical recovery. *)

val state_crc : Maxrs.Dynamic.State.t -> int
(** CRC-32 of {!encode_state} — the compact state fingerprint carried
    by WAL [Check] records and verified by sharded recovery. *)

val decode_state : string -> Maxrs.Dynamic.State.t
(** Inverse of {!encode_state}; raises {!Malformed} on trailing bytes. *)

(** {1 Total decoding}

    Network-facing entry points: decoding arbitrary garbage returns
    [Error], never an exception (fuzzed in the test suite). *)

val protect : (reader -> 'a) -> string -> ('a, string) result
(** [protect dec data] runs [dec] over a fresh cursor on [data],
    mapping {!Malformed} (and, defensively, any other exception — which
    would be a codec bug) to [Error]. *)

val decode_state_result : string -> (Maxrs.Dynamic.State.t, string) result
(** Total version of {!decode_state}. *)
