(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. All
   arithmetic stays within 32 bits, so native 63-bit ints hold every
   intermediate exactly; no external dependency is needed. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc byte =
  let table = Lazy.force table in
  table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let of_substring s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.of_substring";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor 0xFFFFFFFF

let of_string s = of_substring s ~pos:0 ~len:(String.length s)
let of_bytes b = of_string (Bytes.unsafe_to_string b)
