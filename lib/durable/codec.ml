(* Little-endian binary codec for WAL records and full Dynamic states.

   Every multi-byte value is fixed-width little-endian; floats are
   serialized as their IEEE-754 bit pattern (Int64.bits_of_float), so a
   decode-encode round trip is byte-identical and recovered states
   answer queries with the exact same bits as the originals. Decoders
   raise {!Malformed} on any structural problem; the WAL and snapshot
   layers treat that as corruption of the enclosing checksummed frame
   (unreachable unless the frame was produced by an incompatible
   version, since the CRC already guards against bit damage). *)

module Config = Maxrs.Config
module Dynamic = Maxrs.Dynamic
module Sample_space = Maxrs.Sample_space
module Fvec = Maxrs_geom.Fvec

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* Bounds on decoded collection sizes: a corrupt length field must fail
   cleanly instead of attempting a multi-gigabyte allocation. *)
let max_seq_len = 1 lsl 28

(* {1 Encoding} *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let i64 b v = Buffer.add_int64_le b v
let int_ b v = i64 b (Int64.of_int v)
let f64 b v = i64 b (Int64.bits_of_float v)
let bool_ b v = u8 b (if v then 1 else 0)

let opt enc b = function
  | None -> u8 b 0
  | Some v ->
      u8 b 1;
      enc b v

let array_ enc b a =
  int_ b (Array.length a);
  Array.iter (enc b) a

let list_ enc b l =
  int_ b (List.length l);
  List.iter (enc b) l

let float_array b a = array_ f64 b a
let int_array b a = array_ int_ b a

(* Same wire format as [float_array] (length, then one LE f64 bit
   pattern per slot), but written as a single byte run filled straight
   from the Bigarray column — the flat-column analogue of a blit. The
   two encoders are interchangeable on the wire. *)
let fvec b (v : Fvec.t) =
  let n = Fvec.length v in
  int_ b n;
  let raw = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le raw (8 * i) (Int64.bits_of_float (Fvec.unsafe_get v i))
  done;
  Buffer.add_bytes b raw

(* {1 Decoding} *)

type reader = { data : string; mutable pos : int }

let reader ?(pos = 0) data = { data; pos }
let at_end r = r.pos >= String.length r.data

let need r n what =
  if r.pos + n > String.length r.data then
    malformed "truncated %s at offset %d" what r.pos

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r =
  let v = r_i64 r in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then malformed "int out of native range";
  i

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> malformed "bad bool byte %d" v

let r_opt dec r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (dec r)
  | v -> malformed "bad option byte %d" v

(* Length fields are validated against the bytes actually remaining in
   the input before anything is allocated: every element of a decoded
   collection consumes at least [elem_bytes] bytes, so a corrupt (or
   adversarial — these readers also parse network frames) length field
   fails here instead of triggering a multi-gigabyte [Array.init]. *)
let r_len ?(elem_bytes = 1) r what =
  let n = r_int r in
  if n < 0 || n > max_seq_len then malformed "bad %s length %d" what n;
  let remaining = String.length r.data - r.pos in
  if n * elem_bytes > remaining then
    malformed "%s length %d exceeds remaining %d bytes" what n remaining;
  n

let r_array ?elem_bytes dec r what =
  let n = r_len ?elem_bytes r what in
  Array.init n (fun _ -> dec r)

let r_list ?elem_bytes dec r what =
  let n = r_len ?elem_bytes r what in
  List.init n (fun _ -> dec r)

let r_float_array r what = r_array ~elem_bytes:8 r_f64 r what
let r_int_array r what = r_array ~elem_bytes:8 r_int r what

(* Inverse of [fvec]: one bounds check for the whole run, then a
   straight fill of the fresh column. *)
let r_fvec r what =
  let n = r_len ~elem_bytes:8 r what in
  need r (8 * n) what;
  let v = Fvec.create n in
  for i = 0 to n - 1 do
    Fvec.unsafe_set v i
      (Int64.float_of_bits (String.get_int64_le r.data (r.pos + (8 * i))))
  done;
  r.pos <- r.pos + (8 * n);
  v

(* {1 Config} *)

let config b (c : Config.t) =
  f64 b c.Config.epsilon;
  f64 b c.Config.sample_constant;
  int_ b c.Config.min_samples;
  opt int_ b c.Config.max_grid_shifts;
  int_ b c.Config.seed;
  opt int_ b c.Config.domains;
  opt bool_ b c.Config.stats

let r_config r : Config.t =
  let epsilon = r_f64 r in
  let sample_constant = r_f64 r in
  let min_samples = r_int r in
  let max_grid_shifts = r_opt r_int r in
  let seed = r_int r in
  let domains = r_opt r_int r in
  let stats = r_opt r_bool r in
  {
    Config.epsilon;
    sample_constant;
    min_samples;
    max_grid_shifts;
    seed;
    domains;
    stats;
  }

(* {1 Sample-space state} *)

let sample b (s : Sample_space.State.sample_s) =
  int_ b s.Sample_space.State.s_id;
  float_array b s.Sample_space.State.s_pos;
  f64 b s.Sample_space.State.s_depth;
  int_ b s.Sample_space.State.s_flag;
  int_ b s.Sample_space.State.s_version

let r_sample r : Sample_space.State.sample_s =
  let s_id = r_int r in
  let s_pos = r_float_array r "sample pos" in
  let s_depth = r_f64 r in
  let s_flag = r_int r in
  let s_version = r_int r in
  { Sample_space.State.s_id; s_pos; s_depth; s_flag; s_version }

let cell b (c : Sample_space.State.cell_s) =
  int_array b c.Sample_space.State.cs_key;
  int_ b c.Sample_space.State.cs_nballs;
  int_ b c.Sample_space.State.cs_version;
  f64 b c.Sample_space.State.cs_max;
  int_ b c.Sample_space.State.cs_best;
  array_ sample b c.Sample_space.State.cs_samples

let r_cell r : Sample_space.State.cell_s =
  let cs_key = r_int_array r "cell key" in
  let cs_nballs = r_int r in
  let cs_version = r_int r in
  let cs_max = r_f64 r in
  let cs_best = r_int r in
  let cs_samples = r_array r_sample r "cell samples" in
  { Sample_space.State.cs_key; cs_nballs; cs_version; cs_max; cs_best; cs_samples }

let grid b (g : Sample_space.State.grid_s) =
  i64 b g.Sample_space.State.gs_rng;
  int_ b g.Sample_space.State.gs_next_id;
  list_ cell b g.Sample_space.State.gs_cells

let r_grid r : Sample_space.State.grid_s =
  let gs_rng = r_i64 r in
  let gs_next_id = r_int r in
  let gs_cells = r_list r_cell r "grid cells" in
  { Sample_space.State.gs_rng; gs_next_id; gs_cells }

let space b (s : Sample_space.State.t) =
  int_ b s.Sample_space.State.st_dim;
  int_ b s.Sample_space.State.st_samples_per_cell;
  array_ grid b s.Sample_space.State.st_grids

let r_space r : Sample_space.State.t =
  let st_dim = r_int r in
  let st_samples_per_cell = r_int r in
  let st_grids = r_array r_grid r "grids" in
  { Sample_space.State.st_dim; st_samples_per_cell; st_grids }

(* {1 Dynamic state} *)

let ball b (h, (center, weight)) =
  int_ b (Dynamic.handle_id h);
  float_array b center;
  f64 b weight

let r_ball r =
  let h = Dynamic.handle_of_id (r_int r) in
  let center = r_float_array r "ball center" in
  let weight = r_f64 r in
  (h, (center, weight))

let state b (s : Dynamic.State.t) =
  int_ b s.Dynamic.State.dim;
  f64 b s.Dynamic.State.radius;
  config b s.Dynamic.State.cfg;
  list_ ball b s.Dynamic.State.balls;
  int_ b s.Dynamic.State.n0;
  int_ b s.Dynamic.State.next_handle;
  int_ b s.Dynamic.State.epochs;
  space b s.Dynamic.State.space

let r_state r : Dynamic.State.t =
  let dim = r_int r in
  let radius = r_f64 r in
  let cfg = r_config r in
  let balls = r_list r_ball r "balls" in
  let n0 = r_int r in
  let next_handle = r_int r in
  let epochs = r_int r in
  let space = r_space r in
  { Dynamic.State.dim; radius; cfg; balls; n0; next_handle; epochs; space }

let encode_state s =
  let b = Buffer.create 4096 in
  state b s;
  Buffer.contents b

(* The state fingerprint journaled by [Check] records and compared by
   sharded recovery: CRC-32 of the canonical encoding. Two structures
   fingerprint equal iff their canonical states are byte-equal (modulo
   CRC collisions, which the differential suite's full-string compares
   would still catch). *)
let state_crc s = Crc32.of_string (encode_state s)

let decode_state data =
  let r = reader data in
  let s = r_state r in
  if not (at_end r) then
    malformed "trailing bytes after state (%d of %d consumed)" r.pos
      (String.length data);
  s

(* {1 Total decoding}

   Once frames arrive from the network rather than from our own WAL,
   "raises only [Malformed]" is not a strong enough contract: a decode
   of adversarial bytes must be an ordinary [Error] value. [protect]
   is the single funnel — it maps [Malformed] to [Error] and, as a
   last line of defence, any other exception too (an escape of, say,
   [Invalid_argument] would be a codec bug; the fuzz suite exists to
   keep that arm dead, but a daemon must not crash while we look). *)

let protect dec data =
  match dec (reader data) with
  | v -> Ok v
  | exception Malformed m -> Error m
  | exception e ->
      Error (Printf.sprintf "decoder bug: %s" (Printexc.to_string e))

let decode_state_result data =
  protect
    (fun r ->
      let s = r_state r in
      if not (at_end r) then
        malformed "trailing bytes after state (%d of %d consumed)" r.pos
          (String.length data);
      s)
    data
