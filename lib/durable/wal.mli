(** Append-only write-ahead log of dynamic-structure operations.

    File layout: an 8-byte magic ["MXWAL001"], then frames of
    [u32le payload-length | u32le crc32 | payload]. The first frame is
    a parameters record; every later frame is one applied operation or
    an epoch consistency marker. Frames are written with a single
    [write] each, so only a crash can tear the final frame — the
    scanner stops at the first torn or corrupt frame and reports the
    longest valid prefix, which is what recovery replays. *)

type fsync_policy =
  | Always  (** fsync after every append — maximal durability *)
  | Interval of int  (** fsync every [n] appends (and on close/flush) *)
  | Never  (** fsync only on close/flush *)

type params = {
  dim : int;
  radius : float;
  cfg : Maxrs.Config.t;
  base_seq : int;
      (** sequence number of the ops preceding this file's first
          record; non-zero only after a snapshot-driven log rewrite *)
}

type record =
  | Insert of { handle : int; point : float array; weight : float }
  | Delete of int
  | Epoch of { epochs : int; n0 : int }
      (** consistency marker fired by epoch rebuilds; replay verifies
          it instead of applying it *)
  | Sinsert of { seq : int; handle : int; point : float array; weight : float }
      (** sharded insert: carries its global sequence number explicitly,
          because a per-shard log holds only a subsequence of the op
          stream and recovery re-merges the shard logs by [seq] *)
  | Sdelete of { seq : int; handle : int }  (** sharded delete *)
  | Check of { seq : int; state_crc : int }
      (** fingerprint cross-check: CRC-32 of the canonical encoded state
          after op [seq]; written to {e every} shard log at snapshot and
          close, verified during sharded recovery *)

type corruption =
  | Torn of { offset : int }  (** incomplete final frame *)
  | Checksum of { offset : int }  (** CRC mismatch / absurd length *)
  | Malformed_record of { offset : int; reason : string }

val corruption_to_string : corruption -> string

type scan = {
  params : params;
  records : record list;  (** the valid records, in append order *)
  offsets : int array;
      (** [offsets.(i)] = file offset just past record [i] (crash-test
          cut points) *)
  valid_bytes : int;  (** length of the valid prefix *)
  corruption : corruption option;  (** why the scan stopped, if not EOF *)
}

type scan_result =
  | Scan of scan
  | No_file
  | Empty_file
  | Torn_header
      (** the file starts like a WAL but the header never made it to
          disk intact — safe to rewrite *)
  | Foreign_file
      (** the file exists but is not a WAL — refuse to touch it *)

val scan : string -> scan_result
val scan_string : string -> scan_result

(** {1 Writing} *)

type writer

val create : string -> params -> fsync:fsync_policy -> writer
(** Truncate/create the file and write the header (magic + params
    frame), fsyncing it regardless of policy. *)

val reopen : string -> valid_bytes:int -> records:int -> fsync:fsync_policy -> writer
(** Continue an existing log: truncate to the scanned valid prefix
    (dropping any torn/corrupt suffix) and append after it. *)

val append : writer -> record -> unit
(** Append one frame; fsyncs according to the policy. *)

val flush : writer -> unit
(** Force an fsync of any unsynced appends. *)

val close : writer -> unit
(** Flush and close. Idempotent. *)

val bytes_written : writer -> int
val records_written : writer -> int

val record_size : record -> int
(** On-disk frame size of a record, in bytes. *)

val write_all : Unix.file_descr -> bytes -> unit
(** Write the entire buffer, looping on short [write(2)] returns,
    retrying [EINTR], and waiting for writability on [EAGAIN] (so it is
    safe on non-blocking fds). Every WAL append goes through this; the
    network layer reuses it for socket sends. *)
