(* Crash-safe session around [Maxrs.Dynamic] / [Maxrs.Sharded]: every
   applied operation is journaled via the structure's op hook,
   full-state snapshots are taken every [snapshot_every] ops, and
   [open_] on an existing log recovers by loading the newest usable
   snapshot and replaying the log suffix, stopping cleanly at the first
   torn or corrupt record.

   Two backends share the session shell:

   - Solo: one [Dynamic.t], one WAL — the original layout.
   - Shards: one [Sharded.t] whose storage owners each journal to
     their own WAL ([Shard_wal] layout: manifest + <base>.shard<k>).
     Sharded records carry their global seq explicitly; recovery scans
     all shard logs in parallel, merges by seq, and replays the longest
     contiguous prefix, then cross-checks the recovered state
     fingerprint against the newest [Check] record inside the prefix.

   Because restore-from-state continues bit-identically (captured rng
   streams, canonical iteration orders, exact float bit patterns), the
   recovered structure is byte-for-byte equivalent to one that replayed
   the surviving op prefix from scratch — for both backends.

   Ordering: hooks journal an op after it is applied but before the
   mutating call returns, so a crash can only lose ops that had not yet
   returned to the caller — recovery always lands on a valid prefix,
   never a half-applied operation. *)

module Obs = Maxrs_obs.Obs
module Config = Maxrs.Config
module Dynamic = Maxrs.Dynamic
module Sharded = Maxrs.Sharded
module Parallel = Maxrs_parallel.Parallel
module Point = Maxrs_geom.Point

let c_runs = Obs.counter "recovery.runs"
let c_replayed = Obs.counter "recovery.replayed"
let c_truncated = Obs.counter "recovery.truncated_bytes"

(* Wall-clock milliseconds spent in sharded (parallel) recovery —
   the E16 experiment's recovery-latency signal. *)
let c_shard_recovery_ms = Obs.counter "shard.recovery_ms"

type recovery = {
  snapshot_seq : int option;  (** seq of the snapshot used, if any *)
  replayed : int;  (** op records replayed on top of it *)
  seq : int;  (** total ops live after recovery *)
  truncated_bytes : int;  (** corrupt/torn suffix dropped from the log *)
  corruption : string option;  (** why the log scan stopped early *)
  wal_rewritten : bool;
      (** the log was rewritten from a snapshot newer than its own
          valid prefix (or its header was unrecoverable) *)
}

type backend =
  | Solo of { dyn : Dynamic.t; writer : Wal.writer }
  | Shards of { store : Sharded.t; writers : Wal.writer array }

type t = {
  backend : backend;
  wal : string;
  snapshot_every : int;
  mutable seq : int;
  mutable last_snapshot_seq : int;
  mutable closed : bool;
  recovery : recovery option;
}

exception Divergence of string

(* {1 Solo replay} *)

(* Replay [records] onto [dyn], skipping the first [skip] op records
   (already contained in the restored snapshot). Epoch markers are
   verified, not applied: a mismatch means the WAL and the structure
   disagree about history and recovery must not pretend otherwise.
   Sharded records inside a solo log are a layout violation. *)
let replay dyn records ~skip =
  let applied = ref 0 and skipped = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Wal.Insert { handle; point; weight } ->
          if !skipped < skip then incr skipped
          else begin
            let h = Dynamic.insert dyn ~weight point in
            if Dynamic.handle_id h <> handle then
              raise
                (Divergence
                   (Printf.sprintf "replay assigned handle %d, log says %d"
                      (Dynamic.handle_id h) handle));
            incr applied
          end
      | Wal.Delete handle ->
          if !skipped < skip then incr skipped
          else begin
            (match Dynamic.delete dyn (Dynamic.handle_of_id handle) with
            | () -> ()
            | exception Not_found ->
                raise
                  (Divergence
                     (Printf.sprintf "replay deletes unknown handle %d" handle)));
            incr applied
          end
      | Wal.Epoch { epochs; n0 = _ } ->
          if !skipped >= skip && Dynamic.epochs dyn <> epochs then
            raise
              (Divergence
                 (Printf.sprintf "epoch marker %d but structure has %d" epochs
                    (Dynamic.epochs dyn)))
      | Wal.Sinsert _ | Wal.Sdelete _ | Wal.Check _ ->
          raise (Divergence "sharded record in a solo log"))
    records;
  !applied

let install_hook_solo t dyn writer =
  Dynamic.on_op dyn (fun ev ->
      match ev with
      | Dynamic.Op_insert { handle; point; weight } ->
          Wal.append writer
            (Wal.Insert { handle = Dynamic.handle_id handle; point; weight });
          t.seq <- t.seq + 1
      | Dynamic.Op_delete h ->
          Wal.append writer (Wal.Delete (Dynamic.handle_id h));
          t.seq <- t.seq + 1
      | Dynamic.Op_epoch { epochs; n0 } ->
          Wal.append writer (Wal.Epoch { epochs; n0 }))

let install_hook_sharded t store writers =
  Sharded.on_op store (fun ev ->
      match ev with
      | Sharded.Op_insert { shard; handle; point; weight } ->
          t.seq <- t.seq + 1;
          Wal.append writers.(shard)
            (Wal.Sinsert
               { seq = t.seq; handle = Dynamic.handle_id handle; point; weight })
      | Sharded.Op_delete { shard; handle } ->
          t.seq <- t.seq + 1;
          Wal.append writers.(shard)
            (Wal.Sdelete { seq = t.seq; handle = Dynamic.handle_id handle })
      | Sharded.Op_epoch _ ->
          (* Derived state, not an op: sharded recovery re-derives
             rebuilds from the op stream and verifies the result via
             handle checks and [Check] fingerprints instead. *)
          ())

let op_count records =
  List.fold_left
    (fun n r ->
      match r with
      | Wal.Epoch _ | Wal.Check _ -> n
      | Wal.Insert _ | Wal.Delete _ | Wal.Sinsert _ | Wal.Sdelete _ -> n + 1)
    0 records

let params_of_dyn dyn ~base_seq =
  {
    Wal.dim = Dynamic.dim dyn;
    radius = Dynamic.radius dyn;
    cfg = Dynamic.config dyn;
    base_seq;
  }

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Newest snapshot that passes semantic validation and is not older
   than the log's base (an older one could not bridge the gap to the
   first logged record). [restore] abstracts over the backend. *)
let usable_snapshot ~wal ~base ~restore =
  List.find_map
    (fun (seq, state, _file) ->
      if seq < base then None
      else
        match restore state with
        | v -> Some (seq, v)
        | exception Invalid_argument _ -> None)
    (Snapshot.load_all ~wal)

(* {1 Solo recovery} *)

let recover_from_scan ~wal ~fsync (scan : Wal.scan) =
  let base = scan.params.Wal.base_seq in
  let wal_ops = op_count scan.records in
  let valid_seq = base + wal_ops in
  let truncated = file_size wal - scan.valid_bytes in
  let corruption = Option.map Wal.corruption_to_string scan.corruption in
  let finish dyn ~snapshot_seq ~replayed ~seq ~wal_rewritten ~writer =
    Obs.incr c_runs;
    Obs.add c_replayed replayed;
    Obs.add c_truncated (max 0 truncated);
    ( dyn,
      writer,
      { snapshot_seq; replayed; seq; truncated_bytes = max 0 truncated; corruption; wal_rewritten }
    )
  in
  match usable_snapshot ~wal ~base ~restore:Dynamic.restore with
  | Some (snap_seq, dyn) when snap_seq > valid_seq ->
      (* The snapshot is ahead of the log's valid prefix (e.g. bit rot
         destroyed a middle record after the snapshot was taken). The
         snapshot is the longest surviving prefix: adopt it and rewrite
         the log to start there. *)
      let writer =
        Wal.create wal (params_of_dyn dyn ~base_seq:snap_seq) ~fsync
      in
      Ok
        (finish dyn ~snapshot_seq:(Some snap_seq) ~replayed:0 ~seq:snap_seq
           ~wal_rewritten:true ~writer)
  | Some (snap_seq, dyn) ->
      let replayed = replay dyn scan.records ~skip:(snap_seq - base) in
      let writer =
        Wal.reopen wal ~valid_bytes:scan.valid_bytes
          ~records:(List.length scan.records) ~fsync
      in
      Ok
        (finish dyn ~snapshot_seq:(Some snap_seq) ~replayed ~seq:valid_seq
           ~wal_rewritten:false ~writer)
  | None ->
      if base > 0 then
        Error
          (Printf.sprintf
             "%s: log starts at op %d but no usable snapshot covers the gap"
             wal base)
      else
        let dyn =
          Dynamic.create ~cfg:scan.params.Wal.cfg
            ~radius:scan.params.Wal.radius ~dim:scan.params.Wal.dim ()
        in
        let replayed = replay dyn scan.records ~skip:0 in
        let writer =
          Wal.reopen wal ~valid_bytes:scan.valid_bytes
            ~records:(List.length scan.records) ~fsync
        in
        Ok
          (finish dyn ~snapshot_seq:None ~replayed ~seq:valid_seq
             ~wal_rewritten:false ~writer)

(* No usable log: missing, empty, or its header never made it to disk
   intact. Any usable snapshot still recovers the session (the log
   suffix is lost, but it held nothing readable anyway); otherwise
   start fresh with the caller's parameters. Either way the log is
   (re)written. *)
let recover_without_log ~wal ~fsync ~dim ~radius ~cfg ~why =
  let old_bytes = file_size wal in
  let snapshot_seq, dyn =
    match usable_snapshot ~wal ~base:0 ~restore:Dynamic.restore with
    | Some (seq, dyn) -> (Some seq, dyn)
    | None -> (None, Dynamic.create ~cfg ~radius ~dim ())
  in
  let seq = Option.value snapshot_seq ~default:0 in
  let writer = Wal.create wal (params_of_dyn dyn ~base_seq:seq) ~fsync in
  Obs.incr c_runs;
  Obs.add c_truncated old_bytes;
  ( dyn,
    writer,
    {
      snapshot_seq;
      replayed = 0;
      seq;
      truncated_bytes = old_bytes;
      corruption = Some why;
      wal_rewritten = true;
    } )

(* {1 Sharded creation and recovery} *)

(* Write all shard logs, then the manifest — the manifest rename is the
   commit point of the layout. Every fresh log gets a [Check] anchor at
   the base seq so recovery can cross-check even an op-free log. *)
let create_sharded_logs ~wal ~fsync ~(m : Shard_wal.manifest) store =
  let params =
    {
      Wal.dim = m.Shard_wal.dim;
      radius = m.Shard_wal.radius;
      cfg = m.Shard_wal.cfg;
      base_seq = m.Shard_wal.base_seq;
    }
  in
  let crc = Codec.state_crc (Sharded.state store) in
  let writers =
    Array.init m.Shard_wal.shards (fun k ->
        let w = Wal.create (Shard_wal.shard_path wal k) params ~fsync in
        Wal.append w
          (Wal.Check { seq = m.Shard_wal.base_seq; state_crc = crc });
        Wal.flush w;
        w)
  in
  Shard_wal.write_manifest wal m;
  writers

(* Replay the merged op prefix onto the sharded store, skipping ops the
   snapshot already contains, verifying handle assignment, storage
   ownership (the record must have come from the owner's log), and
   every state fingerprint recorded inside the replayed range. *)
let replay_sharded store (merged : Shard_wal.merged) ~from_seq =
  let checks = ref (List.filter (fun (s, _) -> s >= from_seq) merged.checks) in
  let verify_at seq =
    match !checks with
    | (cseq, crc) :: rest when cseq = seq ->
        checks := rest;
        let actual = Codec.state_crc (Sharded.state store) in
        if actual <> crc then
          raise
            (Divergence
               (Printf.sprintf
                  "state fingerprint mismatch at seq %d: recovered %08x, log \
                   says %08x"
                  seq actual crc))
    | _ -> ()
  in
  verify_at from_seq;
  let applied = ref 0 in
  List.iter
    (fun (op : Shard_wal.merged_op) ->
      if op.seq > from_seq then begin
        (match op.record with
        | Wal.Sinsert { handle; point; weight; _ } ->
            let h = Sharded.insert store ~weight point in
            if Dynamic.handle_id h <> handle then
              raise
                (Divergence
                   (Printf.sprintf "replay assigned handle %d, log says %d"
                      (Dynamic.handle_id h) handle));
            (match Sharded.shard_of_handle store h with
            | Some s when s <> op.shard ->
                raise
                  (Divergence
                     (Printf.sprintf
                        "handle %d recovered into shard %d but was logged by \
                         shard %d"
                        handle s op.shard))
            | _ -> ())
        | Wal.Sdelete { handle; _ } -> (
            match Sharded.delete store (Dynamic.handle_of_id handle) with
            | () -> ()
            | exception Not_found ->
                raise
                  (Divergence
                     (Printf.sprintf "replay deletes unknown handle %d" handle)))
        | Wal.Check _ | Wal.Insert _ | Wal.Delete _ | Wal.Epoch _ ->
            (* merge never emits these as prefix ops *)
            assert false);
        incr applied;
        verify_at op.seq
      end)
    merged.ops;
  !applied

let recover_sharded ~wal ~fsync ~domains ~rewrite_manifest
    (m : Shard_wal.manifest) =
  let t0 = Unix.gettimeofday () in
  let dcount = Parallel.resolve domains in
  let nshards = m.Shard_wal.shards in
  let scans =
    Shard_wal.scan_all wal ~shards:nshards ~base_seq:m.Shard_wal.base_seq
      ~domains:dcount
  in
  let merged = Shard_wal.merge ~base_seq:m.Shard_wal.base_seq scans in
  let valid_seq = merged.Shard_wal.seq_end in
  let old_bytes =
    let sum = ref 0 in
    for k = 0 to nshards - 1 do
      sum := !sum + file_size (Shard_wal.shard_path wal k)
    done;
    !sum
  in
  let restore st = Sharded.restore ?domains ~shards:nshards st in
  let finish store ~writers ~snapshot_seq ~replayed ~seq ~truncated_bytes
      ~wal_rewritten =
    Obs.incr c_runs;
    Obs.add c_replayed replayed;
    Obs.add c_truncated (max 0 truncated_bytes);
    Obs.add c_shard_recovery_ms
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
    ( store,
      writers,
      {
        snapshot_seq;
        replayed;
        seq;
        truncated_bytes = max 0 truncated_bytes;
        corruption = merged.Shard_wal.corruption;
        wal_rewritten;
      } )
  in
  match usable_snapshot ~wal ~base:m.Shard_wal.base_seq ~restore with
  | Some (snap_seq, store) when snap_seq > valid_seq ->
      (* The snapshot is ahead of every surviving shard log prefix:
         adopt it and rewrite the whole layout to start there. *)
      let m' = { m with Shard_wal.base_seq = snap_seq } in
      let writers = create_sharded_logs ~wal ~fsync ~m:m' store in
      Ok
        (finish store ~writers ~snapshot_seq:(Some snap_seq) ~replayed:0
           ~seq:snap_seq ~truncated_bytes:old_bytes ~wal_rewritten:true)
  | Some (snap_seq, store) ->
      let replayed = replay_sharded store merged ~from_seq:snap_seq in
      let writers =
        Array.init nshards (fun k ->
            let bytes, records = merged.Shard_wal.keep.(k) in
            if bytes = 0 then
              (* This shard's log is unreadable from the header down:
                 rewrite it in place (its surviving ops, if any, are
                 already beyond the merged prefix). *)
              Wal.create (Shard_wal.shard_path wal k)
                {
                  Wal.dim = m.Shard_wal.dim;
                  radius = m.Shard_wal.radius;
                  cfg = m.Shard_wal.cfg;
                  base_seq = m.Shard_wal.base_seq;
                }
                ~fsync
            else
              Wal.reopen (Shard_wal.shard_path wal k) ~valid_bytes:bytes
                ~records ~fsync)
      in
      let kept_bytes =
        Array.fold_left (fun acc (b, _) -> acc + b) 0 merged.Shard_wal.keep
      in
      if rewrite_manifest then Shard_wal.write_manifest wal m;
      Ok
        (finish store ~writers ~snapshot_seq:(Some snap_seq) ~replayed
           ~seq:valid_seq
           ~truncated_bytes:(old_bytes - kept_bytes)
           ~wal_rewritten:false)
  | None ->
      if m.Shard_wal.base_seq > 0 then
        Error
          (Printf.sprintf
             "%s: shard logs start at op %d but no usable snapshot covers \
              the gap"
             wal m.Shard_wal.base_seq)
      else
        let store =
          Sharded.create ~cfg:m.Shard_wal.cfg ~radius:m.Shard_wal.radius
            ?domains ~dim:m.Shard_wal.dim ~shards:nshards ()
        in
        let replayed = replay_sharded store merged ~from_seq:0 in
        let writers =
          Array.init nshards (fun k ->
              let bytes, records = merged.Shard_wal.keep.(k) in
              if bytes = 0 then
                Wal.create (Shard_wal.shard_path wal k)
                  {
                    Wal.dim = m.Shard_wal.dim;
                    radius = m.Shard_wal.radius;
                    cfg = m.Shard_wal.cfg;
                    base_seq = 0;
                  }
                  ~fsync
              else
                Wal.reopen (Shard_wal.shard_path wal k) ~valid_bytes:bytes
                  ~records ~fsync)
        in
        let kept_bytes =
          Array.fold_left (fun acc (b, _) -> acc + b) 0 merged.Shard_wal.keep
        in
        if rewrite_manifest then Shard_wal.write_manifest wal m;
        Ok
          (finish store ~writers ~snapshot_seq:None ~replayed ~seq:valid_seq
             ~truncated_bytes:(old_bytes - kept_bytes)
             ~wal_rewritten:false)

(* Corrupt or vanished manifest over surviving shard logs: the layout
   is self-describing enough to rebuild it — shard files are
   enumerable and each carries the params (incl. base_seq) in its own
   header. *)
let manifest_from_shard_files wal =
  let n = Shard_wal.shard_files_present wal in
  if n = 0 then None
  else
    let rec first_params k =
      if k >= n then None
      else
        match Wal.scan (Shard_wal.shard_path wal k) with
        | Wal.Scan sc -> Some sc.Wal.params
        | _ -> first_params (k + 1)
    in
    Option.map
      (fun (p : Wal.params) ->
        {
          Shard_wal.shards = n;
          dim = p.Wal.dim;
          radius = p.Wal.radius;
          cfg = p.Wal.cfg;
          base_seq = p.Wal.base_seq;
        })
      (first_params 0)

(* {1 Opening} *)

let open_ ~wal ?shards ?domains ?(snapshot_every = 1000)
    ?(fsync = Wal.Interval 64) ?(dim = 2) ?(radius = 1.)
    ?(cfg = Config.default) () =
  let make backend (recovery : recovery option) =
    let seq = match recovery with Some r -> r.seq | None -> 0 in
    let t =
      {
        backend;
        wal;
        snapshot_every;
        seq;
        last_snapshot_seq = seq;
        closed = false;
        recovery;
      }
    in
    (match backend with
    | Solo { dyn; writer } -> install_hook_solo t dyn writer
    | Shards { store; writers } -> install_hook_sharded t store writers);
    Ok t
  in
  let open_solo () =
    let fresh () =
      let dyn = Dynamic.create ~cfg ~radius ~dim () in
      let writer = Wal.create wal (params_of_dyn dyn ~base_seq:0) ~fsync in
      Ok (dyn, writer, None)
    in
    let recovered =
      match Wal.scan wal with
      | Wal.No_file | Wal.Empty_file -> (
          (* A vanished or never-written log with surviving snapshots is
             still a crash to recover from, not a fresh session. *)
          match Snapshot.load_all ~wal with
          | [] -> fresh ()
          | _ :: _ ->
              let dyn, writer, r =
                recover_without_log ~wal ~fsync ~dim ~radius ~cfg
                  ~why:"log missing or empty"
              in
              Ok (dyn, writer, Some r))
      | Wal.Foreign_file ->
          Error
            (Printf.sprintf
               "%s exists but is not a MaxRS WAL; refusing to overwrite it" wal)
      | Wal.Torn_header ->
          let dyn, writer, r =
            recover_without_log ~wal ~fsync ~dim ~radius ~cfg
              ~why:"torn or corrupt header"
          in
          Ok (dyn, writer, Some r)
      | Wal.Scan scan -> (
          match recover_from_scan ~wal ~fsync scan with
          | Ok (dyn, writer, r) -> Ok (dyn, writer, Some r)
          | Error _ as e -> e
          | exception Divergence msg ->
              Error (wal ^ ": replay divergence: " ^ msg))
    in
    match recovered with
    | Error _ as e -> e
    | Ok (dyn, writer, recovery) -> make (Solo { dyn; writer }) recovery
  in
  let open_sharded ~rewrite_manifest m =
    match recover_sharded ~wal ~fsync ~domains ~rewrite_manifest m with
    | Ok (store, writers, r) -> make (Shards { store; writers }) (Some r)
    | Error _ as e -> e
    | exception Divergence msg ->
        Error (wal ^ ": sharded replay divergence: " ^ msg)
  in
  let fresh_sharded k =
    let store = Sharded.create ~cfg ~radius ?domains ~dim ~shards:k () in
    let m = { Shard_wal.shards = k; dim; radius; cfg; base_seq = 0 } in
    let writers = create_sharded_logs ~wal ~fsync ~m store in
    make (Shards { store; writers }) None
  in
  match Shard_wal.read_manifest wal with
  | Shard_wal.Manifest m ->
      (* The on-disk layout wins over the [shards] argument: shard
         count is a persistent property of the session. *)
      open_sharded ~rewrite_manifest:false m
  | Shard_wal.Corrupt_manifest -> (
      match manifest_from_shard_files wal with
      | Some m -> open_sharded ~rewrite_manifest:true m
      | None ->
          Error
            (Printf.sprintf
               "%s: corrupt shard manifest and no readable shard log to \
                rebuild it from"
               wal))
  | Shard_wal.Not_manifest -> (
      match shards with
      | Some _ ->
          Error
            (Printf.sprintf
               "%s exists but is not a shard manifest; refusing to shard \
                over it"
               wal)
      | None -> open_solo ())
  | Shard_wal.No_manifest -> (
      match shards with
      | Some k when k >= 1 ->
          if Shard_wal.shard_files_present wal > 0 then
            (* Manifest vanished but shard logs survive: recover, then
               restore the manifest. *)
            match manifest_from_shard_files wal with
            | Some m -> open_sharded ~rewrite_manifest:true m
            | None -> fresh_sharded k
          else fresh_sharded k
      | Some k -> Error (Printf.sprintf "shards must be >= 1 (got %d)" k)
      | None ->
          if Shard_wal.shard_files_present wal > 0 then
            match manifest_from_shard_files wal with
            | Some m -> open_sharded ~rewrite_manifest:true m
            | None -> open_solo ()
          else open_solo ())

let recovery t = t.recovery
let seq t = t.seq
let wal_path t = t.wal

let dynamic t =
  match t.backend with
  | Solo { dyn; _ } -> dyn
  | Shards _ ->
      invalid_arg "Session.dynamic: sharded session has no solo structure"

let shards t =
  match t.backend with Solo _ -> 1 | Shards { store; _ } -> Sharded.shards store

let state t =
  match t.backend with
  | Solo { dyn; _ } -> Dynamic.state dyn
  | Shards { store; _ } -> Sharded.state store

let flush_writers t =
  match t.backend with
  | Solo { writer; _ } -> Wal.flush writer
  | Shards { writers; _ } -> Array.iter Wal.flush writers

let snapshot_now t =
  if t.closed then invalid_arg "Session.snapshot_now: closed session";
  (* Flush first so the durable log is never behind the snapshot —
     otherwise every crash right after a snapshot would force a log
     rewrite on recovery. *)
  flush_writers t;
  let st = state t in
  ignore (Snapshot.write ~wal:t.wal ~seq:t.seq st);
  Snapshot.prune ~wal:t.wal ~keep:2;
  (match t.backend with
  | Solo _ -> ()
  | Shards { writers; _ } ->
      (* Stamp the fingerprint into every shard log: recovery verifies
         the merged replay against it. *)
      let crc = Codec.state_crc st in
      Array.iter
        (fun w -> Wal.append w (Wal.Check { seq = t.seq; state_crc = crc }))
        writers);
  t.last_snapshot_seq <- t.seq

let maybe_snapshot t =
  if t.snapshot_every > 0 && t.seq - t.last_snapshot_seq >= t.snapshot_every
  then snapshot_now t

let insert t ?weight p =
  if t.closed then invalid_arg "Session.insert: closed session";
  let h =
    match t.backend with
    | Solo { dyn; _ } -> Dynamic.insert dyn ?weight p
    | Shards { store; _ } -> Sharded.insert store ?weight p
  in
  maybe_snapshot t;
  h

let delete t h =
  if t.closed then invalid_arg "Session.delete: closed session";
  (match t.backend with
  | Solo { dyn; _ } -> Dynamic.delete dyn h
  | Shards { store; _ } -> Sharded.delete store h);
  maybe_snapshot t

let best t =
  match t.backend with
  | Solo { dyn; _ } -> Dynamic.best dyn
  | Shards { store; _ } -> Sharded.best store

let size t =
  match t.backend with
  | Solo { dyn; _ } -> Dynamic.size dyn
  | Shards { store; _ } -> Sharded.size store

let flush t = if not t.closed then flush_writers t

let close t =
  if not t.closed then begin
    (match t.backend with
    | Solo { writer; _ } -> Wal.close writer
    | Shards { store; writers } ->
        (* A final fingerprint anchor: a clean close leaves every shard
           log attesting to the same state. *)
        let crc = Codec.state_crc (Sharded.state store) in
        Array.iter
          (fun w ->
            Wal.append w (Wal.Check { seq = t.seq; state_crc = crc });
            Wal.close w)
          writers;
        Sharded.close store);
    t.closed <- true
  end
