(* Crash-safe session around [Maxrs.Dynamic]: every applied operation
   is journaled to the WAL via the structure's op hook, full-state
   snapshots are taken every [snapshot_every] ops, and [open_] on an
   existing log recovers by loading the newest usable snapshot and
   replaying the WAL suffix, stopping cleanly at the first torn or
   corrupt record.

   Because [Dynamic.restore (Dynamic.state t)] continues bit-identically
   to [t] (captured rng streams, canonical iteration orders, exact
   float bit patterns), the recovered structure is byte-for-byte
   equivalent to one that replayed the surviving op prefix from
   scratch: same cells, same counters, same best-placement answer.

   Ordering: the hook journals an op after it is applied but before the
   mutating call returns, so a crash can only lose ops that had not yet
   returned to the caller — recovery always lands on a valid prefix,
   never a half-applied operation. *)

module Obs = Maxrs_obs.Obs
module Config = Maxrs.Config
module Dynamic = Maxrs.Dynamic
module Point = Maxrs_geom.Point

let c_runs = Obs.counter "recovery.runs"
let c_replayed = Obs.counter "recovery.replayed"
let c_truncated = Obs.counter "recovery.truncated_bytes"

type recovery = {
  snapshot_seq : int option;  (** seq of the snapshot used, if any *)
  replayed : int;  (** op records replayed on top of it *)
  seq : int;  (** total ops live after recovery *)
  truncated_bytes : int;  (** corrupt/torn suffix dropped from the log *)
  corruption : string option;  (** why the log scan stopped early *)
  wal_rewritten : bool;
      (** the log was rewritten from a snapshot newer than its own
          valid prefix (or its header was unrecoverable) *)
}

type t = {
  dyn : Dynamic.t;
  mutable writer : Wal.writer;
  wal : string;
  snapshot_every : int;
  mutable seq : int;
  mutable last_snapshot_seq : int;
  mutable closed : bool;
  recovery : recovery option;
}

exception Divergence of string

(* Replay [records] onto [dyn], skipping the first [skip] op records
   (already contained in the restored snapshot). Epoch markers are
   verified, not applied: a mismatch means the WAL and the structure
   disagree about history and recovery must not pretend otherwise. *)
let replay dyn records ~skip =
  let applied = ref 0 and skipped = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Wal.Insert { handle; point; weight } ->
          if !skipped < skip then incr skipped
          else begin
            let h = Dynamic.insert dyn ~weight point in
            if Dynamic.handle_id h <> handle then
              raise
                (Divergence
                   (Printf.sprintf "replay assigned handle %d, log says %d"
                      (Dynamic.handle_id h) handle));
            incr applied
          end
      | Wal.Delete handle ->
          if !skipped < skip then incr skipped
          else begin
            (match Dynamic.delete dyn (Dynamic.handle_of_id handle) with
            | () -> ()
            | exception Not_found ->
                raise
                  (Divergence
                     (Printf.sprintf "replay deletes unknown handle %d" handle)));
            incr applied
          end
      | Wal.Epoch { epochs; n0 = _ } ->
          if !skipped >= skip && Dynamic.epochs dyn <> epochs then
            raise
              (Divergence
                 (Printf.sprintf "epoch marker %d but structure has %d" epochs
                    (Dynamic.epochs dyn))))
    records;
  !applied

let install_hook t =
  Dynamic.on_op t.dyn (fun ev ->
      match ev with
      | Dynamic.Op_insert { handle; point; weight } ->
          Wal.append t.writer
            (Wal.Insert { handle = Dynamic.handle_id handle; point; weight });
          t.seq <- t.seq + 1
      | Dynamic.Op_delete h ->
          Wal.append t.writer (Wal.Delete (Dynamic.handle_id h));
          t.seq <- t.seq + 1
      | Dynamic.Op_epoch { epochs; n0 } ->
          Wal.append t.writer (Wal.Epoch { epochs; n0 }))

let op_count records =
  List.fold_left
    (fun n r -> match r with Wal.Epoch _ -> n | Wal.Insert _ | Wal.Delete _ -> n + 1)
    0 records

let params_of_dyn dyn ~base_seq =
  {
    Wal.dim = Dynamic.dim dyn;
    radius = Dynamic.radius dyn;
    cfg = Dynamic.config dyn;
    base_seq;
  }

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Newest snapshot that passes semantic validation ([Dynamic.restore])
   and is not older than the log's base (an older one could not bridge
   the gap to the first logged record). *)
let usable_snapshot ~wal ~base =
  List.find_map
    (fun (seq, state, _file) ->
      if seq < base then None
      else
        match Dynamic.restore state with
        | dyn -> Some (seq, dyn)
        | exception Invalid_argument _ -> None)
    (Snapshot.load_all ~wal)

let recover_from_scan ~wal ~fsync (scan : Wal.scan) =
  let base = scan.params.Wal.base_seq in
  let wal_ops = op_count scan.records in
  let valid_seq = base + wal_ops in
  let truncated = file_size wal - scan.valid_bytes in
  let corruption = Option.map Wal.corruption_to_string scan.corruption in
  let finish dyn ~snapshot_seq ~replayed ~seq ~wal_rewritten ~writer =
    Obs.incr c_runs;
    Obs.add c_replayed replayed;
    Obs.add c_truncated (max 0 truncated);
    ( dyn,
      writer,
      { snapshot_seq; replayed; seq; truncated_bytes = max 0 truncated; corruption; wal_rewritten }
    )
  in
  match usable_snapshot ~wal ~base with
  | Some (snap_seq, dyn) when snap_seq > valid_seq ->
      (* The snapshot is ahead of the log's valid prefix (e.g. bit rot
         destroyed a middle record after the snapshot was taken). The
         snapshot is the longest surviving prefix: adopt it and rewrite
         the log to start there. *)
      let writer =
        Wal.create wal (params_of_dyn dyn ~base_seq:snap_seq) ~fsync
      in
      Ok
        (finish dyn ~snapshot_seq:(Some snap_seq) ~replayed:0 ~seq:snap_seq
           ~wal_rewritten:true ~writer)
  | Some (snap_seq, dyn) ->
      let replayed = replay dyn scan.records ~skip:(snap_seq - base) in
      let writer =
        Wal.reopen wal ~valid_bytes:scan.valid_bytes
          ~records:(List.length scan.records) ~fsync
      in
      Ok
        (finish dyn ~snapshot_seq:(Some snap_seq) ~replayed ~seq:valid_seq
           ~wal_rewritten:false ~writer)
  | None ->
      if base > 0 then
        Error
          (Printf.sprintf
             "%s: log starts at op %d but no usable snapshot covers the gap"
             wal base)
      else
        let dyn =
          Dynamic.create ~cfg:scan.params.Wal.cfg
            ~radius:scan.params.Wal.radius ~dim:scan.params.Wal.dim ()
        in
        let replayed = replay dyn scan.records ~skip:0 in
        let writer =
          Wal.reopen wal ~valid_bytes:scan.valid_bytes
            ~records:(List.length scan.records) ~fsync
        in
        Ok
          (finish dyn ~snapshot_seq:None ~replayed ~seq:valid_seq
             ~wal_rewritten:false ~writer)

(* No usable log: missing, empty, or its header never made it to disk
   intact. Any usable snapshot still recovers the session (the log
   suffix is lost, but it held nothing readable anyway); otherwise
   start fresh with the caller's parameters. Either way the log is
   (re)written. *)
let recover_without_log ~wal ~fsync ~dim ~radius ~cfg ~why =
  let old_bytes = file_size wal in
  let snapshot_seq, dyn =
    match usable_snapshot ~wal ~base:0 with
    | Some (seq, dyn) -> (Some seq, dyn)
    | None -> (None, Dynamic.create ~cfg ~radius ~dim ())
  in
  let seq = Option.value snapshot_seq ~default:0 in
  let writer = Wal.create wal (params_of_dyn dyn ~base_seq:seq) ~fsync in
  Obs.incr c_runs;
  Obs.add c_truncated old_bytes;
  ( dyn,
    writer,
    {
      snapshot_seq;
      replayed = 0;
      seq;
      truncated_bytes = old_bytes;
      corruption = Some why;
      wal_rewritten = true;
    } )

let open_ ~wal ?(snapshot_every = 1000) ?(fsync = Wal.Interval 64) ?(dim = 2)
    ?(radius = 1.) ?(cfg = Config.default) () =
  let fresh () =
    let dyn = Dynamic.create ~cfg ~radius ~dim () in
    let writer = Wal.create wal (params_of_dyn dyn ~base_seq:0) ~fsync in
    Ok (dyn, writer, None)
  in
  let recovered =
    match Wal.scan wal with
    | Wal.No_file | Wal.Empty_file -> (
        (* A vanished or never-written log with surviving snapshots is
           still a crash to recover from, not a fresh session. *)
        match Snapshot.load_all ~wal with
        | [] -> fresh ()
        | _ :: _ ->
            let dyn, writer, r =
              recover_without_log ~wal ~fsync ~dim ~radius ~cfg
                ~why:"log missing or empty"
            in
            Ok (dyn, writer, Some r))
    | Wal.Foreign_file ->
        Error
          (Printf.sprintf
             "%s exists but is not a MaxRS WAL; refusing to overwrite it" wal)
    | Wal.Torn_header ->
        let dyn, writer, r =
          recover_without_log ~wal ~fsync ~dim ~radius ~cfg
            ~why:"torn or corrupt header"
        in
        Ok (dyn, writer, Some r)
    | Wal.Scan scan -> (
        match recover_from_scan ~wal ~fsync scan with
        | Ok (dyn, writer, r) -> Ok (dyn, writer, Some r)
        | Error _ as e -> e
        | exception Divergence msg ->
            Error (wal ^ ": replay divergence: " ^ msg))
  in
  match recovered with
  | Error _ as e -> e
  | Ok (dyn, writer, recovery) ->
      let seq =
        match recovery with Some r -> r.seq | None -> 0
      in
      let t =
        {
          dyn;
          writer;
          wal;
          snapshot_every;
          seq;
          last_snapshot_seq = seq;
          closed = false;
          recovery;
        }
      in
      install_hook t;
      Ok t

let recovery t = t.recovery
let dynamic t = t.dyn
let seq t = t.seq
let wal_path t = t.wal

let snapshot_now t =
  if t.closed then invalid_arg "Session.snapshot_now: closed session";
  (* Flush first so the durable log is never behind the snapshot —
     otherwise every crash right after a snapshot would force a log
     rewrite on recovery. *)
  Wal.flush t.writer;
  ignore (Snapshot.write ~wal:t.wal ~seq:t.seq (Dynamic.state t.dyn));
  Snapshot.prune ~wal:t.wal ~keep:2;
  t.last_snapshot_seq <- t.seq

let maybe_snapshot t =
  if t.snapshot_every > 0 && t.seq - t.last_snapshot_seq >= t.snapshot_every
  then snapshot_now t

let insert t ?weight p =
  if t.closed then invalid_arg "Session.insert: closed session";
  let h = Dynamic.insert t.dyn ?weight p in
  maybe_snapshot t;
  h

let delete t h =
  if t.closed then invalid_arg "Session.delete: closed session";
  Dynamic.delete t.dyn h;
  maybe_snapshot t

let best t = Dynamic.best t.dyn
let size t = Dynamic.size t.dyn
let flush t = if not t.closed then Wal.flush t.writer

let close t =
  if not t.closed then begin
    Wal.close t.writer;
    t.closed <- true
  end
