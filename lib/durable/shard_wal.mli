(** Sharded WAL layout: a shard manifest at the session's base path
    plus one ordinary {!Wal} file per shard beside it
    ([<base>.shard<k>]).

    Sharded op records carry their global sequence number explicitly;
    recovery scans all shard logs in parallel, merges them back into
    sequence order, and keeps the {e longest contiguous prefix} from
    the base — an op whose predecessor (in another shard's log) was
    lost is dropped even though its own frame is intact, so parallel
    multi-log recovery lands on the same bit-identical-prefix contract
    as the single-log session. *)

val shard_path : string -> int -> string
(** [shard_path base k] is the path of shard [k]'s log. *)

val shard_files_present : string -> int
(** Number of consecutive shard logs present on disk (self-describing
    shard count when the manifest is lost). *)

(** {1 Manifest} *)

type manifest = {
  shards : int;
  dim : int;
  radius : float;
  cfg : Maxrs.Config.t;
  base_seq : int;
}

val write_manifest : string -> manifest -> unit
(** Atomic (tmp + fsync + rename). Written {e last} at layout creation
    — the commit point — and rewritten on every log rewrite. *)

type manifest_result =
  | Manifest of manifest
  | No_manifest  (** no file at the path *)
  | Not_manifest  (** a file exists but is not a shard manifest *)
  | Corrupt_manifest  (** right magic, damaged payload *)

val read_manifest : string -> manifest_result

(** {1 Parallel scan and sequence merge} *)

type shard_scan = {
  scan : Wal.scan option;
  damaged : string option;
      (** why this shard contributed nothing (missing/unreadable log,
          base mismatch); damage bounds the merged prefix instead of
          aborting recovery *)
}

val scan_shard : string -> int -> base_seq:int -> shard_scan

val scan_all :
  string -> shards:int -> base_seq:int -> domains:int -> shard_scan array
(** Scan every shard log concurrently on a scratch pool of [domains]
    domains; deterministic (scans are pure reads placed by index). *)

type merged_op = { seq : int; shard : int; record : Wal.record }

type merged = {
  seq_end : int;  (** last op of the contiguous prefix (= recovered seq) *)
  ops : merged_op list;  (** contiguous prefix ops, ascending seq *)
  checks : (int * int) list;
      (** (seq, state_crc) fingerprints with seq <= seq_end, ascending *)
  keep : (int * int) array;
      (** per shard: (valid-prefix bytes, records kept) — the reopen
          truncation boundaries *)
  dropped : int;  (** intact op records beyond the contiguous prefix *)
  corruption : string option;  (** first reason the prefix stopped early *)
}

val merge : base_seq:int -> shard_scan array -> merged
