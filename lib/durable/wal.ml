(* Write-ahead log: an append-only file of length-prefixed,
   CRC-32-checksummed frames.

   Layout:
   {v
     magic   8 bytes  "MXWAL001"
     frame*           u32le payload length | u32le crc32(payload) | payload
   v}

   The first frame is always a [Params] record (tag 0) fixing the
   structure parameters and the log's base sequence number; every later
   frame is one applied operation ([Insert]/[Delete]) or an [Epoch]
   consistency marker. Each frame is assembled in memory and written
   with a single [write], so under normal operation frames are never
   interleaved; a crash can still tear the final frame, which the
   scanner detects by length/checksum and cuts off — recovery always
   lands on the longest valid prefix. *)

module Obs = Maxrs_obs.Obs
module Config = Maxrs.Config

let c_records = Obs.counter "wal.records"
let c_bytes = Obs.counter "wal.bytes"
let c_fsyncs = Obs.counter "wal.fsyncs"

let magic = "MXWAL001"

(* A frame larger than this is treated as corruption: a damaged length
   field must not trigger a giant allocation. Real frames are tiny
   (tens of bytes for ops, ~100 for params). *)
let max_frame_bytes = 1 lsl 24

type fsync_policy = Always | Interval of int | Never

type params = {
  dim : int;
  radius : float;
  cfg : Config.t;
  base_seq : int;
      (* sequence number of the first op recorded in this file: ops
         1..base_seq live only in snapshots (the log was rewritten
         after recovering from a snapshot newer than the log) *)
}

type record =
  | Insert of { handle : int; point : float array; weight : float }
  | Delete of int
  | Epoch of { epochs : int; n0 : int }
  | Sinsert of { seq : int; handle : int; point : float array; weight : float }
  | Sdelete of { seq : int; handle : int }
  | Check of { seq : int; state_crc : int }

type corruption =
  | Torn of { offset : int }
  | Checksum of { offset : int }
  | Malformed_record of { offset : int; reason : string }

let corruption_to_string = function
  | Torn { offset } -> Printf.sprintf "torn frame at byte %d" offset
  | Checksum { offset } -> Printf.sprintf "checksum mismatch at byte %d" offset
  | Malformed_record { offset; reason } ->
      Printf.sprintf "malformed record at byte %d: %s" offset reason

type scan = {
  params : params;
  records : record list;
  offsets : int array;
      (* offsets.(i) = file offset just past record i — the crash
         harness uses these as cut points *)
  valid_bytes : int;
  corruption : corruption option;
}

type scan_result =
  | Scan of scan
  | No_file
  | Empty_file
  | Torn_header
  | Foreign_file

(* {1 Frame codec} *)

type frame = F_params of params | F_op of record

let encode_payload fr =
  let b = Buffer.create 64 in
  (match fr with
  | F_params p ->
      Codec.u8 b 0;
      Codec.int_ b p.dim;
      Codec.f64 b p.radius;
      Codec.config b p.cfg;
      Codec.int_ b p.base_seq
  | F_op (Insert { handle; point; weight }) ->
      Codec.u8 b 1;
      Codec.int_ b handle;
      Codec.float_array b point;
      Codec.f64 b weight
  | F_op (Delete handle) ->
      Codec.u8 b 2;
      Codec.int_ b handle
  | F_op (Epoch { epochs; n0 }) ->
      Codec.u8 b 3;
      Codec.int_ b epochs;
      Codec.int_ b n0
  | F_op (Sinsert { seq; handle; point; weight }) ->
      Codec.u8 b 4;
      Codec.int_ b seq;
      Codec.int_ b handle;
      Codec.float_array b point;
      Codec.f64 b weight
  | F_op (Sdelete { seq; handle }) ->
      Codec.u8 b 5;
      Codec.int_ b seq;
      Codec.int_ b handle
  | F_op (Check { seq; state_crc }) ->
      Codec.u8 b 6;
      Codec.int_ b seq;
      Codec.int_ b state_crc);
  Buffer.contents b

let decode_payload payload =
  let r = Codec.reader payload in
  let fr =
    match Codec.r_u8 r with
    | 0 ->
        let dim = Codec.r_int r in
        let radius = Codec.r_f64 r in
        let cfg = Codec.r_config r in
        let base_seq = Codec.r_int r in
        F_params { dim; radius; cfg; base_seq }
    | 1 ->
        let handle = Codec.r_int r in
        let point = Codec.r_float_array r "insert point" in
        let weight = Codec.r_f64 r in
        F_op (Insert { handle; point; weight })
    | 2 -> F_op (Delete (Codec.r_int r))
    | 3 ->
        let epochs = Codec.r_int r in
        let n0 = Codec.r_int r in
        F_op (Epoch { epochs; n0 })
    | 4 ->
        let seq = Codec.r_int r in
        let handle = Codec.r_int r in
        let point = Codec.r_float_array r "sinsert point" in
        let weight = Codec.r_f64 r in
        F_op (Sinsert { seq; handle; point; weight })
    | 5 ->
        let seq = Codec.r_int r in
        let handle = Codec.r_int r in
        F_op (Sdelete { seq; handle })
    | 6 ->
        let seq = Codec.r_int r in
        let state_crc = Codec.r_int r in
        F_op (Check { seq; state_crc })
    | t -> Codec.malformed "unknown record tag %d" t
  in
  if not (Codec.at_end r) then Codec.malformed "trailing bytes in record";
  fr

let frame_bytes fr =
  let payload = encode_payload fr in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (Crc32.of_string payload));
  Buffer.add_string b payload;
  Buffer.to_bytes b

let record_size r = Bytes.length (frame_bytes (F_op r))

let u32_at data pos = Int32.to_int (String.get_int32_le data pos) land 0xFFFFFFFF

(* Decode the frame starting at [pos]; [Ok (frame, next_pos)] or the
   corruption that stops the scan. *)
let read_frame data pos =
  let len = String.length data in
  if pos + 8 > len then Error (Torn { offset = pos })
  else
    let plen = u32_at data pos in
    let crc = u32_at data (pos + 4) in
    if plen > max_frame_bytes then Error (Checksum { offset = pos })
    else if pos + 8 + plen > len then Error (Torn { offset = pos })
    else
      let payload = String.sub data (pos + 8) plen in
      if Crc32.of_string payload <> crc then Error (Checksum { offset = pos })
      else
        match decode_payload payload with
        | fr -> Ok (fr, pos + 8 + plen)
        | exception Codec.Malformed reason ->
            Error (Malformed_record { offset = pos; reason })

(* {1 Scanning} *)

let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let is_magic_prefix s =
  String.length s <= String.length magic
  && s = String.sub magic 0 (String.length s)

let scan_string data =
  let len = String.length data in
  if len = 0 then Empty_file
  else if len < 8 || String.sub data 0 8 <> magic then
    if is_magic_prefix (String.sub data 0 (min len 8)) then Torn_header
    else Foreign_file
  else
    match read_frame data 8 with
    | Error _ | Ok (F_op _, _) -> Torn_header
    | Ok (F_params params, pos0) ->
        let rec go pos acc offs =
          if pos >= len then
            {
              params;
              records = List.rev acc;
              offsets = Array.of_list (List.rev offs);
              valid_bytes = pos;
              corruption = None;
            }
          else
            match read_frame data pos with
            | Ok (F_op r, next) -> go next (r :: acc) (next :: offs)
            | Ok (F_params _, _) ->
                {
                  params;
                  records = List.rev acc;
                  offsets = Array.of_list (List.rev offs);
                  valid_bytes = pos;
                  corruption =
                    Some
                      (Malformed_record
                         { offset = pos; reason = "params record after header" });
                }
            | Error c ->
                {
                  params;
                  records = List.rev acc;
                  offsets = Array.of_list (List.rev offs);
                  valid_bytes = pos;
                  corruption = Some c;
                }
        in
        Scan (go pos0 [] [])

let scan path =
  if not (Sys.file_exists path) then No_file else scan_string (read_file path)

(* {1 Writing} *)

type writer = {
  fd : Unix.file_descr;
  policy : fsync_policy;
  mutable unsynced : int;  (* appends since the last fsync *)
  mutable bytes : int;  (* current valid file length *)
  mutable records : int;
  mutable closed : bool;
}

let do_fsync w =
  if w.unsynced > 0 then begin
    Unix.fsync w.fd;
    Obs.incr c_fsyncs;
    w.unsynced <- 0
  end

(* Complete the whole buffer even when [write(2)] returns short: a
   single [write] is only guaranteed atomic for small pipe writes, and
   this helper is also the transmit path for sockets (the network
   server), where short writes are routine. [EINTR] retries
   immediately; [EAGAIN]/[EWOULDBLOCK] (non-blocking fds) waits for
   writability before retrying, so the loop never spins. *)
let write_all fd b =
  let len = Bytes.length b in
  let n = ref 0 in
  while !n < len do
    match Unix.write fd b !n (len - !n) with
    | k -> n := !n + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.05)
  done

let create path params ~fsync =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let frame = frame_bytes (F_params params) in
  let b = Bytes.cat (Bytes.of_string magic) frame in
  write_all fd b;
  let w =
    {
      fd;
      policy = fsync;
      unsynced = 1;
      bytes = Bytes.length b;
      records = 0;
      closed = false;
    }
  in
  (* The header is always made durable immediately, whatever the
     policy: an unreadable header would cost the whole log. *)
  do_fsync w;
  Obs.add c_bytes (Bytes.length b);
  w

let reopen path ~valid_bytes ~records ~fsync =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  (* Cut off any trailing garbage past the valid prefix so new frames
     never follow damaged bytes. *)
  Unix.ftruncate fd valid_bytes;
  ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
  let w =
    { fd; policy = fsync; unsynced = 1; bytes = valid_bytes; records; closed = false }
  in
  do_fsync w;
  w

let append w r =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  let frame = frame_bytes (F_op r) in
  write_all w.fd frame;
  w.bytes <- w.bytes + Bytes.length frame;
  w.records <- w.records + 1;
  w.unsynced <- w.unsynced + 1;
  Obs.incr c_records;
  Obs.add c_bytes (Bytes.length frame);
  (match w.policy with
  | Always -> do_fsync w
  | Interval n -> if w.unsynced >= n then do_fsync w
  | Never -> ())

let flush w = if not w.closed then do_fsync w

let bytes_written w = w.bytes
let records_written w = w.records

let close w =
  if not w.closed then begin
    (* Terminal fsync even under [Never]: a clean close should leave a
       durable log; [Never] only opts out of per-append syncing. *)
    do_fsync w;
    Unix.close w.fd;
    w.closed <- true
  end
