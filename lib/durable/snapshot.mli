(** Atomic full-state snapshots, stored as sidecar files next to the
    WAL ([<wal>.snap.<seq>], where [seq] is the number of ops applied
    when the snapshot was taken).

    A snapshot file is [magic "MXSNAP01" | u32le crc32 | i64 seq |
    encoded state], written to a temporary file, fsynced, and renamed
    into place — a crash mid-write can never produce a half-written
    snapshot under the real name. Corrupt or bit-rotted snapshots are
    skipped by {!load_all}, falling back to older ones. *)

val path : wal:string -> seq:int -> string

val write : wal:string -> seq:int -> Maxrs.Dynamic.State.t -> string
(** Atomically write the snapshot for op [seq]; returns its path. *)

val load_all : wal:string -> (int * Maxrs.Dynamic.State.t * string) list
(** All decodable snapshots for this WAL, newest (largest [seq]) first.
    Checksum- or decode-corrupt files are silently omitted; semantic
    validation happens later in [Dynamic.restore]. *)

val prune : wal:string -> keep:int -> unit
(** Delete all but the [keep] newest snapshot files. *)
