(* Full-state snapshots: sidecar files next to the WAL.

   A snapshot of the state after op [seq] lives at [<wal>.snap.<seq>]:
   {v
     magic   8 bytes  "MXSNAP01"
     u32le   crc32(payload)
     payload          i64 seq | encoded Dynamic.State
   v}

   Writes are atomic: encode to [<target>.tmp], fsync, rename into
   place, fsync the directory. A crash mid-write leaves at worst a
   stale .tmp (ignored by recovery) — never a half-written snapshot
   under the real name. Recovery considers candidates newest-first and
   skips any that fail the checksum or decode, so a bit-rotted snapshot
   silently falls back to the previous one (or to pure WAL replay). *)

module Obs = Maxrs_obs.Obs
module Dynamic = Maxrs.Dynamic

let c_writes = Obs.counter "snapshot.writes"
let c_bytes = Obs.counter "snapshot.bytes"

let magic = "MXSNAP01"

let path ~wal ~seq = Printf.sprintf "%s.snap.%d" wal seq

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write ~wal ~seq state =
  let target = path ~wal ~seq in
  let tmp = target ^ ".tmp" in
  let payload =
    let b = Buffer.create 4096 in
    Codec.i64 b (Int64.of_int seq);
    Codec.state b state;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 12) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int (Crc32.of_string payload));
  Buffer.add_string b payload;
  let data = Buffer.contents b in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let bytes = Bytes.of_string data in
      let len = Bytes.length bytes in
      let n = ref 0 in
      while !n < len do
        n := !n + Unix.write fd bytes !n (len - !n)
      done;
      Unix.fsync fd);
  Sys.rename tmp target;
  fsync_dir (Filename.dirname (if Filename.is_relative target then Filename.concat (Sys.getcwd ()) target else target));
  Obs.incr c_writes;
  Obs.add c_bytes (String.length data);
  target

let candidates ~wal =
  let dir = Filename.dirname wal in
  let prefix = Filename.basename wal ^ ".snap." in
  let plen = String.length prefix in
  (match Sys.readdir dir with
  | entries -> entries
  | exception Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         if
           String.length name > plen
           && String.sub name 0 plen = prefix
           && not (Filename.check_suffix name ".tmp")
         then
           match int_of_string_opt (String.sub name plen (String.length name - plen)) with
           | Some seq when seq >= 0 -> Some (seq, Filename.concat dir name)
           | _ -> None
         else None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let load_file file =
  let data = In_channel.with_open_bin file In_channel.input_all in
  if String.length data < 12 || String.sub data 0 8 <> magic then None
  else
    let crc = Int32.to_int (String.get_int32_le data 8) land 0xFFFFFFFF in
    let plen = String.length data - 12 in
    if Crc32.of_substring data ~pos:12 ~len:plen <> crc then None
    else
      let r = Codec.reader ~pos:12 data in
      match
        let seq = Codec.r_int r in
        let state = Codec.r_state r in
        if not (Codec.at_end r) then Codec.malformed "trailing bytes";
        (seq, state)
      with
      | seq, state -> Some (seq, state)
      | exception Codec.Malformed _ -> None

let load_all ~wal =
  candidates ~wal
  |> List.filter_map (fun (seq, file) ->
         match load_file file with
         | Some (s, state) when s = seq -> Some (seq, state, file)
         | _ -> None)

let prune ~wal ~keep =
  candidates ~wal
  |> List.iteri (fun i (_, file) ->
         if i >= keep then try Sys.remove file with Sys_error _ -> ())
