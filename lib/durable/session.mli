(** Crash-safe session around {!Maxrs.Dynamic}.

    Every applied insert/delete is journaled to a checksummed
    write-ahead log before the mutating call returns; full-state
    snapshots are written atomically every [snapshot_every] ops; and
    {!open_} on an existing log recovers by loading the newest usable
    snapshot and replaying the WAL suffix, stopping cleanly at the
    first torn or corrupt record.

    The recovery guarantee is {e bit-identical prefix continuation}:
    after any crash, truncation, or single-record corruption, the
    recovered structure is byte-for-byte equivalent (same cells, same
    counters, same answer to the next query) to one that replayed the
    surviving op prefix from scratch. Ops whose mutating call had not
    returned at crash time may be lost; nothing else is. *)

type t

type recovery = {
  snapshot_seq : int option;  (** seq of the snapshot used, if any *)
  replayed : int;  (** op records replayed on top of it *)
  seq : int;  (** total ops live after recovery *)
  truncated_bytes : int;  (** corrupt/torn suffix dropped from the log *)
  corruption : string option;  (** why the log scan stopped early *)
  wal_rewritten : bool;
      (** the log was rewritten from a snapshot newer than its valid
          prefix, or its header was unrecoverable *)
}

val open_ :
  wal:string ->
  ?snapshot_every:int ->
  ?fsync:Wal.fsync_policy ->
  ?dim:int ->
  ?radius:float ->
  ?cfg:Maxrs.Config.t ->
  unit ->
  (t, string) result
(** Open or recover the session at [wal]. [snapshot_every] ops between
    automatic snapshots (default 1000; [0] disables them); [fsync]
    defaults to [Interval 64]. When the log exists, its recorded
    [dim]/[radius]/[cfg] win over the optional arguments (which default
    to [dim = 2], [radius = 1.], {!Maxrs.Config.default} and only seed
    a fresh session). [Error] cases: the path holds a non-WAL file, or
    the log is unrecoverable (replay divergence, or a rewritten log
    whose covering snapshot was lost). *)

val insert : t -> ?weight:float -> Maxrs_geom.Point.t -> Maxrs.Dynamic.handle
val delete : t -> Maxrs.Dynamic.handle -> unit
val best : t -> (Maxrs_geom.Point.t * float) option
val size : t -> int
val seq : t -> int
(** Ops applied over the session's whole history (across restarts). *)

val recovery : t -> recovery option
(** [None] when {!open_} created a fresh log. *)

val dynamic : t -> Maxrs.Dynamic.t
(** The underlying structure. Mutating it directly still journals (the
    hook is installed on it) but bypasses the snapshot cadence. *)

val snapshot_now : t -> unit
(** Flush the WAL, write a snapshot at the current seq, prune old ones
    (keeping 2). *)

val flush : t -> unit
(** fsync any unsynced WAL appends. *)

val close : t -> unit
(** Flush and close the WAL. Idempotent; further mutation raises. *)

val wal_path : t -> string
