(** Crash-safe session around {!Maxrs.Dynamic} / {!Maxrs.Sharded}.

    Every applied insert/delete is journaled to a checksummed
    write-ahead log before the mutating call returns; full-state
    snapshots are written atomically every [snapshot_every] ops; and
    {!open_} on an existing log recovers by loading the newest usable
    snapshot and replaying the WAL suffix, stopping cleanly at the
    first torn or corrupt record.

    Two on-disk layouts share this interface:

    - {e solo} (default): one {!Maxrs.Dynamic.t}, one WAL file.
    - {e sharded} ([~shards:k]): one {!Maxrs.Sharded.t} whose [k]
      storage owners each journal to their own WAL beside a shard
      manifest (see {!Shard_wal}). Recovery scans all shard logs in
      parallel, merges them by global sequence number, replays the
      longest contiguous prefix, and cross-checks the recovered state
      fingerprint against the [Check] records stamped into every shard
      log at each snapshot and clean close.

    The recovery guarantee is {e bit-identical prefix continuation}
    for both layouts: after any crash, truncation, or record
    corruption (including damage confined to a subset of shard logs),
    the recovered structure is byte-for-byte equivalent (same cells,
    same counters, same answer to the next query) to one that replayed
    the surviving op prefix from scratch. Ops whose mutating call had
    not returned at crash time may be lost; nothing else is. *)

type t

type recovery = {
  snapshot_seq : int option;  (** seq of the snapshot used, if any *)
  replayed : int;  (** op records replayed on top of it *)
  seq : int;  (** total ops live after recovery *)
  truncated_bytes : int;  (** corrupt/torn suffix dropped from the log(s) *)
  corruption : string option;  (** why the log scan stopped early *)
  wal_rewritten : bool;
      (** the log was rewritten from a snapshot newer than its valid
          prefix, or its header was unrecoverable *)
}

exception Divergence of string
(** Raised internally when replay disagrees with the log (handle or
    epoch mismatch, wrong shard, state-fingerprint mismatch); surfaces
    from {!open_} as an [Error]. *)

val open_ :
  wal:string ->
  ?shards:int ->
  ?domains:int ->
  ?snapshot_every:int ->
  ?fsync:Wal.fsync_policy ->
  ?dim:int ->
  ?radius:float ->
  ?cfg:Maxrs.Config.t ->
  unit ->
  (t, string) result
(** Open or recover the session at [wal]. [snapshot_every] ops between
    automatic snapshots (default 1000; [0] disables them); [fsync]
    defaults to [Interval 64]. When the log exists, its recorded
    [dim]/[radius]/[cfg] win over the optional arguments (which default
    to [dim = 2], [radius = 1.], {!Maxrs.Config.default} and only seed
    a fresh session).

    [shards]: [Some k] creates a fresh {e sharded} session with [k]
    storage shards. On an existing layout the disk wins: a shard
    manifest at [wal] always reopens sharded (with its recorded shard
    count, ignoring [shards]), a solo WAL always reopens solo — and
    passing [shards] over an existing solo WAL is an [Error] rather
    than a silent overwrite. A lost or corrupt manifest over surviving
    shard logs is rebuilt from the shard log headers. [domains] bounds
    the worker pool of a sharded session (and its parallel recovery
    scan); defaults like {!Maxrs_parallel.Parallel.resolve}.

    [Error] cases: the path holds a foreign file, the log is
    unrecoverable (replay divergence, fingerprint mismatch, or a
    rewritten log whose covering snapshot was lost), or [shards]
    conflicts with the existing layout. *)

val insert : t -> ?weight:float -> Maxrs_geom.Point.t -> Maxrs.Dynamic.handle
val delete : t -> Maxrs.Dynamic.handle -> unit
val best : t -> (Maxrs_geom.Point.t * float) option
val size : t -> int

val seq : t -> int
(** Ops applied over the session's whole history (across restarts). *)

val recovery : t -> recovery option
(** [None] when {!open_} created a fresh log. *)

val shards : t -> int
(** Storage shard count: [1] for a solo session. *)

val dynamic : t -> Maxrs.Dynamic.t
(** The underlying structure of a {e solo} session. Mutating it
    directly still journals (the hook is installed on it) but bypasses
    the snapshot cadence. Raises [Invalid_argument] on a sharded
    session — use {!state} for backend-independent access. *)

val state : t -> Maxrs.Dynamic.State.t
(** Canonical full state of either backend — solo and sharded sessions
    holding the same balls return byte-identical encodings. *)

val snapshot_now : t -> unit
(** Flush the WAL(s), write a snapshot at the current seq, prune old
    ones (keeping 2). A sharded session additionally stamps the state
    fingerprint ([Check] record) into every shard log. *)

val flush : t -> unit
(** fsync any unsynced WAL appends. *)

val close : t -> unit
(** Flush and close the WAL(s); a sharded session writes a final
    fingerprint anchor to every shard log and shuts its pool down.
    Idempotent; further mutation raises. *)

val wal_path : t -> string
