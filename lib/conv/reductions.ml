module Interval1d = Maxrs_sweep.Interval1d

type indexed_oracle = int array -> int array -> int array -> int array
type batched_maxrs_oracle = lens:float array -> (float * float) array -> float array

(* ---------------- Section 5.1: (min,+) via (min,+,M) ---------------- *)

let min_plus_via_indexed ~oracle ~m a b =
  assert (m > 0);
  let n = Array.length a in
  assert (Array.length b = n && n > 0);
  let out = Array.make n 0 in
  let s = ref 0 in
  while !s < n do
    let hi = Int.min n (!s + m) in
    let batch = Array.init (hi - !s) (fun i -> !s + i) in
    let res = oracle a b batch in
    Array.iteri (fun i k -> out.(k) <- res.(i)) batch;
    s := hi
  done;
  out

(* ---------------- Section 5.2: (min,+,M) via (max,+,M) --------------- *)

let indexed_min_via_max ~oracle a b m =
  let neg = Array.map (fun x -> -x) in
  Array.map (fun x -> -x) (oracle (neg a) (neg b) m)

(* --------- Section 5.3: (max,+,M) via positive (max,+,M) ------------ *)

let indexed_max_via_positive ~oracle a b m =
  let min_of arr = Array.fold_left Int.min arr.(0) arr in
  let delta = Int.min (min_of a) (min_of b) in
  if delta >= 0 then oracle a b m
  else
    let shift arr = Array.map (fun x -> x - delta) arr in
    Array.map (fun c -> c + (2 * delta)) (oracle (shift a) (shift b) m)

(* --------- Section 5.4: positive (max,+,M) via batched MaxRS --------- *)

(* Lemma 5.1 as stated in the paper has a gap: an interval whose left
   endpoint lies left of every A-point (its case 3) pairs all A-points
   with their guards but can still leave one B-point b > k_s unpaired,
   covering weight B_b which may exceed C_{k_s} (e.g. A = [0;0],
   B = [0;15], k = 0). We repair the construction by boosting every
   value by W = 1 + max entry: canonical two-capture placements then earn
   at least 2W while any single-capture or empty placement earns strictly
   less than 2W, so the oracle's optimum is exactly C_{k_s} + 2W. *)
let boost_of a b =
  let max_of arr = Array.fold_left Int.max 0 arr in
  1 + Int.max (max_of a) (max_of b)

let build_batched_maxrs_instance a b m =
  let n = Array.length a in
  assert (Array.length b = n && n > 0);
  Array.iter (fun x -> assert (x >= 0)) a;
  Array.iter (fun x -> assert (x >= 0)) b;
  Array.iter (fun k -> assert (0 <= k && k < n)) m;
  let w = boost_of a b in
  let x_offset = float_of_int ((2 * n) - 1) in
  let pts = Array.make (4 * n) (0., 0.) in
  for i = 0 to n - 1 do
    let fi = float_of_int i and ai = float_of_int (a.(i) + w) in
    pts.(2 * i) <- (fi, ai);
    pts.((2 * i) + 1) <- (fi -. 0.5, -.ai)
  done;
  for j = 0 to n - 1 do
    let fj = float_of_int j and bj = float_of_int (b.(j) + w) in
    pts.((2 * n) + (2 * j)) <- (x_offset -. fj, bj);
    pts.((2 * n) + (2 * j) + 1) <- (x_offset -. fj +. 0.5, -.bj)
  done;
  let lens = Array.map (fun k -> x_offset -. float_of_int k) m in
  (pts, lens)

let positive_max_via_batched_maxrs ~oracle a b m =
  let pts, lens = build_batched_maxrs_instance a b m in
  let w = boost_of a b in
  let ws = oracle ~lens pts in
  (* All point weights are integers, so the optimal sums are too; undo the
     boost (each canonical placement captures two boosted values). *)
  Array.map (fun v -> int_of_float (Float.round v) - (2 * w)) ws

(* --------------------------- Full chain ----------------------------- *)

(* [Interval1d.batched] resolves its own domain count from
   [MAXRS_DOMAINS] when none is given, so the default oracle already
   parallelizes the m independent queries; [make_batched_maxrs_oracle]
   pins an explicit count. *)
let make_batched_maxrs_oracle ?domains () : batched_maxrs_oracle =
 fun ~lens pts ->
  Array.map
    (fun p -> p.Interval1d.value)
    (Interval1d.batched ?domains ~lens pts)

let default_batched_maxrs_oracle = make_batched_maxrs_oracle ()

let min_plus_via_batched_maxrs ?batch ~oracle a b =
  let n = Array.length a in
  let m = match batch with Some m -> m | None -> n in
  let positive_oracle = positive_max_via_batched_maxrs ~oracle in
  let max_oracle = indexed_max_via_positive ~oracle:positive_oracle in
  let min_oracle = indexed_min_via_max ~oracle:max_oracle in
  min_plus_via_indexed ~oracle:min_oracle ~m a b
