(** Smallest k-enclosing interval (SEI) and its batched version (Section
    6), plus the Section 6.2 reduction from monotone (min,+)-convolution
    to batched SEI.

    SEI: given n points on the line and k in [1, n], find the shortest
    closed interval containing at least k points. After sorting, the
    answer for one k is a linear window scan; the batched version (all k
    simultaneously) is the trivial O(n^2) algorithm whose conditional
    optimality is Theorem 1.4. *)

type interval = { lo : float; hi : float }

val length : interval -> float

val smallest : float array -> k:int -> interval
(** O(n log n) (sort + scan). Requires [1 <= k <= n]. *)

val batched : ?domains:int -> float array -> float array
(** [batched pts] returns [g] with [g.(k-1)] the length of the smallest
    interval enclosing [k] points, for every k in [1, n]. O(n^2). The n
    window scans are independent; [domains] (default [MAXRS_DOMAINS],
    else 1) runs them concurrently with bit-identical output for any
    domain count. *)

val smallest_checked :
  float array -> k:int -> (interval, Maxrs_resilience.Guard.error) result
(** {!smallest} with validated input: non-empty, all-finite points and
    [k] in range, reported as a structured error instead of an
    assertion failure. *)

val batched_checked :
  ?domains:int ->
  float array ->
  (float array, Maxrs_resilience.Guard.error) result
(** {!batched} with validated input (non-empty, all-finite points). *)

val monotone_min_plus_via_bsei :
  ?domains:int -> int array -> int array -> int array
(** Section 6.2: monotone (min,+)-convolution of two strictly decreasing
    sequences, computed through a batched-SEI oracle on the 2n constructed
    points, with recovery [F_k = G_{2n-k} + D_{n-1} + E_{n-1} - 2]. *)

val min_plus_via_bsei : ?domains:int -> int array -> int array -> int array
(** Full Section 6 chain: general (min,+)-convolution via monotonization
    and batched SEI. [domains] is forwarded to the batched-SEI oracle. *)
