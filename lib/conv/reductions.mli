(** The Section 5 reduction chain, executable end to end:

    (min,+)-convolution
      -> (min,+,M)-convolution           (Section 5.1: batching indices)
      -> (max,+,M)-convolution           (Section 5.2: negation)
      -> positive (max,+,M)-convolution  (Section 5.3: shifting by Delta)
      -> batched MaxRS in R^1            (Section 5.4: guarded points)

    Each step is a linear-time transformation around an oracle for the
    next problem; composing them solves (min,+)-convolution with a batched
    1-D MaxRS solver, which is how Theorem 1.3's lower bound transfers.
    Running the chain against the naive convolution is the repository's
    executable proof of the construction. *)

type indexed_oracle = int array -> int array -> int array -> int array
(** [oracle a b m] returns the convolution restricted to indices [m]. *)

type batched_maxrs_oracle = lens:float array -> (float * float) array -> float array
(** [oracle ~lens pts] returns, for each interval length, the maximum
    total weight of points covered by a closed interval of that length. *)

val min_plus_via_indexed : oracle:indexed_oracle -> m:int -> int array -> int array -> int array
(** Section 5.1: solve full (min,+) with ceil(n/m) oracle calls on index
    batches of size at most [m]. *)

val indexed_min_via_max : oracle:indexed_oracle -> indexed_oracle
(** Section 5.2: (min,+,M) via a (max,+,M) oracle by negating inputs and
    output. *)

val indexed_max_via_positive : oracle:indexed_oracle -> indexed_oracle
(** Section 5.3: (max,+,M) via a positive (max,+,M) oracle by shifting
    both sequences up by the global minimum. *)

val build_batched_maxrs_instance :
  int array -> int array -> int array -> (float * float) array * float array
(** Section 5.4: the guarded-point construction. Returns the 4n weighted
    points (A-points at i with guards at i-0.5, B-points at 2n-1-j with
    guards at 2n-1-j+0.5) and the m interval lengths L_s = 2n-1-k_s.
    Requires non-negative sequences.

    Deviation from the paper (bug repair): every value is boosted by
    W = 1 + max entry before embedding. Lemma 5.1's case 3 overlooks
    placements that pair every A-point with its guard yet leave one
    B-point b > k_s unpaired, which can beat C_{k_s}; with the boost such
    single-capture placements earn < 2W while every canonical placement
    earns >= 2W, restoring exactness. See DESIGN.md. *)

val positive_max_via_batched_maxrs : oracle:batched_maxrs_oracle -> indexed_oracle
(** Section 5.4: positive (max,+,M) via a batched-MaxRS oracle; Lemma 5.1
    guarantees the recovered values are exact. *)

val min_plus_via_batched_maxrs :
  ?batch:int -> oracle:batched_maxrs_oracle -> int array -> int array -> int array
(** The full chain. [batch] is the M-batch size m (default n, i.e. one
    oracle call). *)

val default_batched_maxrs_oracle : batched_maxrs_oracle
(** The repository's own exact solver ({!Maxrs_sweep.Interval1d.batched});
    parallelizes its m independent queries per the [MAXRS_DOMAINS]
    environment variable. *)

val make_batched_maxrs_oracle : ?domains:int -> unit -> batched_maxrs_oracle
(** Same solver with an explicit domain count for the batched queries;
    the oracle's answers are bit-identical for any domain count. *)
