module Parallel = Maxrs_parallel.Parallel
module Guard = Maxrs_resilience.Guard

type interval = { lo : float; hi : float }

let length i = i.hi -. i.lo

let sorted_copy pts =
  let s = Array.copy pts in
  Array.sort Float.compare s;
  s

let smallest pts ~k =
  let n = Array.length pts in
  assert (1 <= k && k <= n);
  let s = sorted_copy pts in
  let best = ref { lo = s.(0); hi = s.(k - 1) } in
  for i = 1 to n - k do
    let len = s.(i + k - 1) -. s.(i) in
    if len < length !best then best := { lo = s.(i); hi = s.(i + k - 1) }
  done;
  !best

let batched ?domains pts =
  let n = Array.length pts in
  assert (n > 0);
  let s = sorted_copy pts in
  let answer km1 =
    let k = km1 + 1 in
    let best = ref (s.(k - 1) -. s.(0)) in
    for i = 1 to n - k do
      let len = s.(i + k - 1) -. s.(i) in
      if len < !best then best := len
    done;
    !best
  in
  (* Total work is ~n^2/2; below n = 256 the scans are cheaper than
     spawning domains. *)
  let domains = if n < 256 then 1 else Parallel.resolve domains in
  if domains = 1 then Array.init n answer
  else
    (* The n window scans are independent reads of the sorted array;
       slot k-1 always holds the k-enclosing answer. *)
    Parallel.with_pool ~domains (fun pool -> Parallel.map pool ~n answer)

let smallest_checked pts ~k =
  let open Guard in
  let* () = non_empty ~field:"points" pts in
  let* () = finite_values ~field:"points" pts in
  let n = Array.length pts in
  if k < 1 || k > n then
    invalid ~field:"k" (Printf.sprintf "must lie in [1, %d], got %d" n k)
  else Ok (smallest pts ~k)

let batched_checked ?domains pts =
  let open Guard in
  let* () = non_empty ~field:"points" pts in
  let* () = finite_values ~field:"points" pts in
  Ok (batched ?domains pts)

let monotone_min_plus_via_bsei ?domains d e =
  let n = Array.length d in
  assert (Array.length e = n && n > 0);
  assert (Convolution.is_strictly_decreasing d);
  assert (Convolution.is_strictly_decreasing e);
  let dn1 = float_of_int d.(n - 1) and en1 = float_of_int e.(n - 1) in
  (* P_i = -D_i + (D_{n-1} - 1) < 0;  P_{n+i} = E_{n-1-i} + (1 - E_{n-1}) > 0. *)
  let pts =
    Array.init (2 * n) (fun idx ->
        if idx < n then -.float_of_int d.(idx) +. (dn1 -. 1.)
        else float_of_int e.(n - 1 - (idx - n)) +. (1. -. en1))
  in
  let g = batched ?domains pts in
  (* F_k = G_{2n-k} + D_{n-1} + E_{n-1} - 2; G is 1-indexed in the paper,
     g.(j-1) here. The points are integers shifted by integer offsets, so
     rounding restores exactness. *)
  Array.init n (fun k ->
      let gk = g.((2 * n) - k - 1) in
      int_of_float (Float.round (gk +. dn1 +. en1 -. 2.)))

let min_plus_via_bsei ?domains a b =
  Monotone.min_plus_via_monotone
    ~oracle:(fun d e -> monotone_min_plus_via_bsei ?domains d e)
    a b
