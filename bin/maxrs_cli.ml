(* maxrs — command-line interface to the MaxRS library.

   Point files are plain CSV, one point per line:
     weighted points:  x,y[,z...],weight   (use `--unweighted` for weight 1)
     colored points:   x,y,color           (color is a non-negative int)
     1-D points:       x,weight

   Try:
     maxrs generate --kind clusters --n 1000 --out pts.csv
     maxrs static --input pts.csv --radius 2
     maxrs exact-disk --input pts.csv --radius 2 *)

open Cmdliner

module Point = Maxrs_geom.Point
module Rng = Maxrs_geom.Rng
module Config = Maxrs.Config
module Static = Maxrs.Static
module Colored = Maxrs.Colored
module Dynamic = Maxrs.Dynamic
module Output_sensitive = Maxrs.Output_sensitive
module Approx_colored = Maxrs.Approx_colored
module Workload = Maxrs.Workload
module Interval1d = Maxrs_sweep.Interval1d
module Disk2d = Maxrs_sweep.Disk2d
module Colored_disk2d = Maxrs_sweep.Colored_disk2d
module Bsei = Maxrs_conv.Bsei
module Convolution = Maxrs_conv.Convolution
module Reductions = Maxrs_conv.Reductions

module Points_io = Maxrs.Points_io
module Trace = Maxrs.Trace
module Verify = Maxrs.Verify
module Resilient = Maxrs.Resilient
module Guard = Maxrs_resilience.Guard
module Budget = Maxrs_resilience.Budget
module Outcome = Maxrs_resilience.Outcome
module Boxd = Maxrs_sweep.Boxd
module Rect2d = Maxrs_sweep.Rect2d
module Colored_rect2d = Maxrs_sweep.Colored_rect2d
module Approx_colored_rect = Maxrs.Approx_colored_rect
module Batched2d = Maxrs_sweep.Batched2d
module Obs = Maxrs_obs.Obs
module Session = Maxrs_durable.Session
module Wal = Maxrs_durable.Wal
module Rmsq = Maxrs_query.Rmsq
module Index_builder = Maxrs_query.Index_builder
module Qepoch = Maxrs_query.Epoch
module Netio = Maxrs_server.Netio
module Sproto = Maxrs_server.Proto
module Sclient = Maxrs_server.Client

(* ------------------------------------------------------------------ *)
(* Failure model: distinct exit codes with one-line diagnostics *)

let exit_parse_error = 2
let exit_invalid_input = 3
let exit_deadline = 4
let exit_interrupted = 5

let resilience_exits =
  Cmd.Exit.info exit_parse_error ~doc:"on malformed input files (parse error)."
  :: Cmd.Exit.info exit_invalid_input
       ~doc:
         "on invalid input data: non-finite coordinates or weights, \
          negative weights/colors, dimension mismatches, empty inputs."
  :: Cmd.Exit.info exit_deadline
       ~doc:
         "when $(b,--strict) is set and the $(b,--deadline) expired before \
          the exact answer was found."
  :: Cmd.Exit.info exit_interrupted
       ~doc:
         "when SIGINT/SIGTERM interrupted a $(b,session) run; the WAL and \
          any $(b,--stats) snapshot are flushed before exiting."
  :: Cmd.Exit.defaults

let guarded f =
  try f () with
  | Points_io.Parse_error msg | Trace.Parse_error msg ->
      Printf.eprintf "maxrs: parse error: %s\n" msg;
      exit_parse_error
  | Guard.Error e ->
      Printf.eprintf "maxrs: %s\n" (Guard.to_string e);
      exit_invalid_input

let invalid e =
  Printf.eprintf "maxrs: %s\n" (Guard.to_string e);
  exit_invalid_input

let source_label = function
  | Resilient.Exact -> "exact solver"
  | Resilient.Approx_fallback -> "approximation fallback"
  | Resilient.Best_so_far -> "best-so-far scan"

(* Shared by the deadline-aware commands: report how the answer was
   obtained and map expiry to the --strict | --lenient policy. *)
let finish_outcome ~strict ~source outcome =
  if Outcome.is_complete outcome then 0
  else begin
    Printf.eprintf "maxrs: deadline expired; %s answer from the %s\n"
      (Outcome.label outcome) (source_label source);
    if strict then exit_deadline else 0
  end

(* ------------------------------------------------------------------ *)
(* IO helpers *)

let load_weighted path ~unweighted = Points_io.load_weighted ~unweighted path
let load_1d = Points_io.load_1d

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
      let oc = open_out p in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ------------------------------------------------------------------ *)
(* Observability: --stats[=FILE] *)

(* Pre-register the cross-layer counters so a [--stats] snapshot always
   carries the full key set: OCaml only runs the initializers of linked
   compilation units, so a run that never touches, say, the kd-tree
   would otherwise omit its counters entirely instead of reporting 0. *)
let () =
  List.iter
    (fun name -> ignore (Obs.counter name : Obs.counter))
    [
      "kd.visits";
      "kd.points";
      "sweep.events";
      "sweep.circles";
      "sweep.interval1d.queries";
      "sweep.interval1d.events";
      "segment_tree.updates";
      "segment_tree.nodes";
      "grid.cells";
      "samples.drawn";
      "samples.visited";
      "os.cells";
      "os.disks";
      "os.sweep_events";
      "approx.colors_sampled";
      "approx.disks_sampled";
      "pool.jobs";
      "pool.chunks";
      "pool.waits";
      "pool.retries";
      "pool.recovered";
      "resilient.degraded";
      "resilient.partial";
      "rmsq.builds";
      "rmsq.queries";
      "rmsq.hits";
      "rmsq.fallbacks";
      "wal.records";
      "wal.bytes";
      "wal.fsyncs";
      "snapshot.writes";
      "snapshot.bytes";
      "recovery.runs";
      "recovery.replayed";
      "recovery.truncated_bytes";
    ]

(* Allocation pressure of the timed region, sampled from the GC rather
   than accumulated by the code under test: [with_stats] records the
   [Gc.quick_stat] word-count deltas across the solve so a snapshot
   shows how much minor-heap traffic (and promotion out of it) the run
   caused. Word counts are exact for the minor heap, so a regression in
   an allocation-free kernel shows up as a jump in these two keys. *)
let c_gc_minor = Obs.counter "gc.minor_words"
let c_gc_promoted = Obs.counter "gc.promoted_words"

let stats_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Record operation counters during the run and print a one-line \
           JSON snapshot to $(docv) when done ($(docv) defaults to \
           stdout). Recording alone can also be enabled with \
           MAXRS_STATS=1.")

let with_stats stats f =
  match stats with
  | None -> f ()
  | Some dest ->
      Obs.set_enabled true;
      let g0 = Gc.quick_stat () in
      let code = f () in
      let g1 = Gc.quick_stat () in
      Obs.add c_gc_minor
        (int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words));
      Obs.add c_gc_promoted
        (int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words));
      let json = Obs.Snapshot.to_json (Obs.Snapshot.capture ()) in
      (if dest = "-" then print_endline json
       else
         with_out (Some dest) (fun oc ->
             output_string oc json;
             output_char oc '\n'));
      code

(* ------------------------------------------------------------------ *)
(* Common options *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input CSV file.")

let radius_arg =
  Arg.(value & opt float 1. & info [ "r"; "radius" ] ~docv:"R" ~doc:"Query ball radius.")

let epsilon_arg =
  Arg.(
    value & opt float 0.25
    & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Approximation parameter.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let shifts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shifts" ]
        ~docv:"K"
        ~doc:
          "Cap the Lemma 2.1 grid-shift collection at $(docv) random \
           shifts (practical mode); default is the faithful collection.")

let unweighted_arg =
  Arg.(
    value & flag
    & info [ "unweighted" ] ~doc:"Treat every input row as weight 1.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds for the exact solve. On expiry the \
           solver degrades gracefully to the near-linear approximation \
           pipeline and the reported answer is re-verified against the full \
           input; see $(b,--strict) to fail instead.")

let strict_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "strict" ]
              ~doc:
                "With $(b,--deadline): exit with code 4 when the deadline \
                 expires instead of reporting the degraded answer." );
          ( false,
            info [ "lenient" ]
              ~doc:
                "With $(b,--deadline): report the verified degraded answer \
                 on expiry and exit 0 (default)." );
        ])

(* ------------------------------------------------------------------ *)
(* generate *)

let generate kind n dim extent colors_count opt seed out =
  let rng = Rng.create seed in
  with_out out (fun oc ->
      let emit_weighted pts =
        Array.iter
          (fun (p, w) ->
            Array.iter (fun c -> Printf.fprintf oc "%g," c) p;
            Printf.fprintf oc "%g\n" w)
          pts
      in
      match kind with
      | "uniform" ->
          emit_weighted
            (Workload.uniform_weighted rng ~dim ~n ~extent ~max_weight:1.)
      | "clusters" ->
          emit_weighted
            (Array.map
               (fun p -> (p, 1.))
               (Workload.gaussian_clusters rng ~dim ~n ~k:8 ~extent
                  ~spread:(extent /. 20.)))
      | "planted" ->
          let pts, center, optv = Workload.planted rng ~dim ~n ~opt in
          Printf.fprintf oc "# planted optimum %g at %s\n" optv
            (Point.to_string center);
          emit_weighted pts
      | "trajectories" ->
          let pts, cols =
            Workload.trajectories rng ~m:colors_count
              ~steps:(Int.max 1 (n / Int.max 1 colors_count))
              ~extent ~step:(extent /. 30.)
          in
          Array.iteri
            (fun i (x, y) -> Printf.fprintf oc "%g,%g,%d\n" x y cols.(i))
            pts
      | k -> failwith (Printf.sprintf "unknown kind %S" k));
  0

let generate_cmd =
  let kind =
    Arg.(
      value & opt string "uniform"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"uniform | clusters | planted | trajectories.")
  in
  let n = Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Point count.") in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~docv:"D" ~doc:"Dimension.") in
  let extent =
    Arg.(value & opt float 20. & info [ "extent" ] ~docv:"E" ~doc:"Box side.")
  in
  let colors =
    Arg.(
      value & opt int 20
      & info [ "colors" ] ~docv:"M" ~doc:"Trajectory / color count.")
  in
  let opt =
    Arg.(
      value & opt int 50
      & info [ "opt" ] ~docv:"OPT" ~doc:"Planted optimum size.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate workload point sets.")
    Term.(const generate $ kind $ n $ dim $ extent $ colors $ opt $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* static *)

let static input radius epsilon shifts seed unweighted stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let pts = load_weighted input ~unweighted in
      if Array.length pts = 0 then begin
        prerr_endline "empty input";
        1
      end
      else begin
        let dim = Point.dim (fst pts.(0)) in
        let cfg = Config.make ~epsilon ~max_grid_shifts:shifts ~seed () in
        let r = Static.solve_or_point ~cfg ~radius ~dim pts in
        Printf.printf "center: %s\nweight: %g\n"
          (Point.to_string r.Static.center)
          r.Static.value;
        0
      end)

let static_cmd =
  Cmd.v
    (Cmd.info "static"
       ~doc:"(1/2-eps)-approximate MaxRS for a d-ball (Theorem 1.2).")
    Term.(
      const static $ input_arg $ radius_arg $ epsilon_arg $ shifts_arg
      $ seed_arg $ unweighted_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* colored *)

let colored input radius epsilon shifts seed stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let pts, colors = Points_io.load_colored input in
      let points = Array.map (fun (x, y) -> [| x; y |]) pts in
      let cfg = Config.make ~epsilon ~max_grid_shifts:shifts ~seed () in
      let r = Colored.solve_or_point ~cfg ~radius ~dim:2 points ~colors in
      Printf.printf "center: %s\ndistinct colors: %d\n"
        (Point.to_string r.Colored.center)
        r.Colored.value;
      0)

let colored_cmd =
  Cmd.v
    (Cmd.info "colored"
       ~doc:"(1/2-eps)-approximate colored MaxRS (Theorem 1.5).")
    Term.(
      const colored $ input_arg $ radius_arg $ epsilon_arg $ shifts_arg
      $ seed_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* exact-disk *)

let exact_disk input radius unweighted deadline strict stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let pts = load_weighted input ~unweighted in
      let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) pts in
      match Resilient.exact_weighted ?deadline ~radius pts3 with
      | Error e -> invalid e
      | Ok outcome ->
          let r = Outcome.value outcome in
          Printf.printf "center: (%g, %g)\nweight: %g\n" r.Resilient.wx
            r.Resilient.wy r.Resilient.value;
          finish_outcome ~strict ~source:r.Resilient.wsource outcome)

let exact_disk_cmd =
  Cmd.v
    (Cmd.info "exact-disk" ~exits:resilience_exits
       ~doc:"Exact disk MaxRS by angular sweep ([CL86]-style, O(n^2 log n)).")
    Term.(
      const exact_disk $ input_arg $ radius_arg $ unweighted_arg $ deadline_arg
      $ strict_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* exact-colored / output-sensitive / approx-colored *)

let output_sensitive input radius shifts seed deadline strict stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let pts, colors = Points_io.load_colored input in
      match deadline with
      | None ->
          let r =
            Output_sensitive.solve ~radius ?max_shifts:shifts ~seed pts ~colors
          in
          Printf.printf "center: (%g, %g)\ndistinct colors: %d\n"
            r.Output_sensitive.x r.Output_sensitive.y r.Output_sensitive.depth;
          Printf.printf "stats: %d shifts, %d cells, %d sweep events\n"
            r.Output_sensitive.stats.Output_sensitive.shifts
            r.Output_sensitive.stats.Output_sensitive.cells_processed
            r.Output_sensitive.stats.Output_sensitive.sweep_events;
          0
      | Some _ -> (
          match
            Resilient.exact_colored ~radius ?max_shifts:shifts ~seed ?deadline
              pts ~colors
          with
          | Error e -> invalid e
          | Ok outcome ->
              let r = Outcome.value outcome in
              Printf.printf
                "center: (%g, %g)\ndistinct colors: %d (verified: %b)\n"
                r.Resilient.x r.Resilient.y r.Resilient.depth
                r.Resilient.verified;
              finish_outcome ~strict ~source:r.Resilient.source outcome))

let output_sensitive_cmd =
  Cmd.v
    (Cmd.info "output-sensitive" ~exits:resilience_exits
       ~doc:"Exact colored disk MaxRS, output-sensitive (Theorem 4.6).")
    Term.(
      const output_sensitive $ input_arg $ radius_arg $ shifts_arg $ seed_arg
      $ deadline_arg $ strict_arg $ stats_arg)

let approx_colored input radius epsilon shifts seed deadline strict stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let pts, colors = Points_io.load_colored input in
      let budget =
        match deadline with
        | None -> Budget.unlimited
        | Some s -> Budget.of_seconds s
      in
      match
        Approx_colored.solve_checked ~radius ~epsilon ?max_shifts:shifts ~seed
          ~budget pts ~colors
      with
      | Error e -> invalid e
      | Ok outcome ->
          let r = Outcome.value outcome in
          Printf.printf
            "center: (%g, %g)\ndistinct colors: %d (estimate was %d)\n"
            r.Approx_colored.x r.Approx_colored.y r.Approx_colored.depth
            r.Approx_colored.estimate;
          (match r.Approx_colored.strategy with
          | Approx_colored.Exact_small ->
              print_endline "strategy: exact (small opt)"
          | Approx_colored.Sampled { lambda; colors_sampled; disks_sampled } ->
              Printf.printf
                "strategy: sampled colors (lambda=%.3f, %d colors, %d disks)\n"
                lambda colors_sampled disks_sampled);
          finish_outcome ~strict ~source:Resilient.Best_so_far outcome)

let approx_colored_cmd =
  Cmd.v
    (Cmd.info "approx-colored" ~exits:resilience_exits
       ~doc:"(1-eps)-approximate colored disk MaxRS (Theorem 1.6).")
    Term.(
      const approx_colored $ input_arg $ radius_arg $ epsilon_arg $ shifts_arg
      $ seed_arg $ deadline_arg $ strict_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* solve: unified resilient front door *)

(* Same front door, served remotely: the input is parsed locally (parse
   failures keep exit code 2 without a network round-trip), the solve
   runs on a maxrs_serverd daemon, and output and exit codes match the
   local path byte for byte — answers travel as IEEE-754 bit patterns,
   so the printed floats are the solver's exact bits. *)

let source_of_proto = function
  | Sproto.Exact -> Resilient.Exact
  | Sproto.Approx_fallback -> Resilient.Approx_fallback
  | Sproto.Best_so_far -> Resilient.Best_so_far

let remote_solve addr input radius shifts seed colored_in unweighted deadline
    strict =
  guarded (fun () ->
      let client = Sclient.create addr in
      let fail_remote e =
        match e with
        | Sclient.Server { code = Sproto.Invalid; msg; _ } ->
            (* The server ran the same Guard checks the local path
               would have: same message, same exit code. *)
            Printf.eprintf "maxrs: %s\n" msg;
            exit_invalid_input
        | e ->
            Printf.eprintf "maxrs: remote solve failed: %s\n"
              (Sclient.error_to_string e);
            1
      in
      if colored_in then begin
        let pts, colors = Points_io.load_colored input in
        match
          Sclient.solve_colored ?deadline ?max_shifts:shifts ~seed client
            ~radius pts ~colors
        with
        | Error e -> fail_remote e
        | Ok outcome ->
            let a = Outcome.value outcome in
            Printf.printf
              "center: (%g, %g)\ndistinct colors: %d (verified: %b)\n"
              a.Sproto.x a.Sproto.y
              (Float.to_int a.Sproto.value)
              a.Sproto.verified;
            finish_outcome ~strict
              ~source:(source_of_proto a.Sproto.source)
              outcome
      end
      else begin
        let pts = load_weighted input ~unweighted in
        let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) pts in
        match Sclient.solve_weighted ?deadline client ~radius pts3 with
        | Error e -> fail_remote e
        | Ok outcome ->
            let a = Outcome.value outcome in
            Printf.printf "center: (%g, %g)\nweight: %g\n" a.Sproto.x
              a.Sproto.y a.Sproto.value;
            finish_outcome ~strict
              ~source:(source_of_proto a.Sproto.source)
              outcome
      end)

let solve input radius shifts seed colored_in unweighted deadline strict stats
    remote =
  match remote with
  | Some addr ->
      with_stats stats @@ fun () ->
      remote_solve addr input radius shifts seed colored_in unweighted deadline
        strict
  | None ->
  with_stats stats @@ fun () ->
  guarded (fun () ->
      if colored_in then begin
        let pts, colors = Points_io.load_colored input in
        match
          Resilient.exact_colored ~radius ?max_shifts:shifts ~seed ?deadline
            pts ~colors
        with
        | Error e -> invalid e
        | Ok outcome ->
            let r = Outcome.value outcome in
            Printf.printf
              "center: (%g, %g)\ndistinct colors: %d (verified: %b)\n"
              r.Resilient.x r.Resilient.y r.Resilient.depth
              r.Resilient.verified;
            finish_outcome ~strict ~source:r.Resilient.source outcome
      end
      else begin
        let pts = load_weighted input ~unweighted in
        let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) pts in
        match Resilient.exact_weighted ?deadline ~radius pts3 with
        | Error e -> invalid e
        | Ok outcome ->
            let r = Outcome.value outcome in
            Printf.printf "center: (%g, %g)\nweight: %g\n" r.Resilient.wx
              r.Resilient.wy r.Resilient.value;
            finish_outcome ~strict ~source:r.Resilient.wsource outcome
      end)

let solve_cmd =
  let colored_in =
    Arg.(
      value & flag
      & info [ "colored" ]
          ~doc:
            "Input rows are x,y,color; solve the colored problem (exact \
             output-sensitive solver, Theorem 4.6) instead of the weighted \
             one.")
  in
  let remote =
    let addr_conv =
      Arg.conv
        ( (fun s ->
            match Netio.addr_of_string s with
            | Ok a -> Ok a
            | Error m -> Error (`Msg m)),
          fun ppf a -> Format.pp_print_string ppf (Netio.addr_to_string a) )
    in
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "remote" ] ~docv:"ADDR"
          ~doc:
            "Solve on a running $(b,maxrs_serverd) at $(docv) \
             ($(b,unix:/path) or $(b,host:port)) instead of in-process. \
             Output and exit codes match the local path.")
  in
  Cmd.v
    (Cmd.info "solve" ~exits:resilience_exits
       ~doc:
         "Unified front door: the exact solver under an optional deadline, \
          degrading to the matching near-linear approximation on expiry \
          (weighted: Theorem 1.2 fallback; colored: Theorem 1.6 fallback).")
    Term.(
      const solve $ input_arg $ radius_arg $ shifts_arg $ seed_arg $ colored_in
      $ unweighted_arg $ deadline_arg $ strict_arg $ stats_arg $ remote)

(* ------------------------------------------------------------------ *)
(* batched (1-D) and bsei *)

let batched input lens =
  guarded (fun () ->
      let pts = load_1d input in
      let lens = Array.of_list lens in
      match Interval1d.batched_checked ~lens pts with
      | Error e -> invalid e
      | Ok results ->
          Array.iteri
            (fun i p ->
              Printf.printf "L=%g: weight %g at [%g, %g]\n" lens.(i)
                p.Interval1d.value p.Interval1d.lo
                (p.Interval1d.lo +. lens.(i)))
            results;
          0)

let batched_cmd =
  let lens =
    Arg.(
      non_empty
      & opt (list float) []
      & info [ "lens" ] ~docv:"L1,L2,..." ~doc:"Interval lengths.")
  in
  Cmd.v
    (Cmd.info "batched"
       ~doc:"Batched 1-D MaxRS (the O(n log n + mn) upper bound of Thm 1.3).")
    Term.(const batched $ input_arg $ lens)

let bsei input ks =
  guarded (fun () ->
      let pts = Array.map fst (load_1d input) in
      (match ks with
      | [] ->
          let g = Guard.ok_exn (Bsei.batched_checked pts) in
          Array.iteri
            (fun i len -> Printf.printf "k=%d: length %g\n" (i + 1) len)
            g
      | ks ->
          List.iter
            (fun k ->
              let iv = Guard.ok_exn (Bsei.smallest_checked pts ~k) in
              Printf.printf "k=%d: [%g, %g] length %g\n" k iv.Bsei.lo
                iv.Bsei.hi (Bsei.length iv))
            ks);
      0)

let bsei_cmd =
  let ks =
    Arg.(
      value
      & opt (list int) []
      & info [ "k" ] ~docv:"K1,K2,..."
          ~doc:"Specific k values (default: all, the batched problem).")
  in
  Cmd.v
    (Cmd.info "bsei" ~doc:"Smallest k-enclosing interval (Theorem 1.4 setting).")
    Term.(const bsei $ input_arg $ ks)

(* ------------------------------------------------------------------ *)
(* rect / box / colored-rect / batched-disks / dynamic *)

let rect input width height unweighted =
  guarded (fun () ->
      let pts = load_weighted input ~unweighted in
      let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) pts in
      let r = Rect2d.max_sum ~width ~height pts3 in
      Printf.printf "center: (%g, %g)\nweight: %g\n" r.Rect2d.x r.Rect2d.y
        r.Rect2d.value;
      0)

let width_arg =
  Arg.(value & opt float 1. & info [ "width" ] ~docv:"W" ~doc:"Rectangle width.")

let height_arg =
  Arg.(
    value & opt float 1. & info [ "height" ] ~docv:"H" ~doc:"Rectangle height.")

let rect_cmd =
  Cmd.v
    (Cmd.info "rect"
       ~doc:"Exact rectangle MaxRS ([IA83, NB95] sweep, O(n log n)).")
    Term.(const rect $ input_arg $ width_arg $ height_arg $ unweighted_arg)

let box input widths unweighted =
  guarded (fun () ->
      let pts = load_weighted input ~unweighted in
      let widths = Array.of_list widths in
      let r = Boxd.max_sum ~widths pts in
      Printf.printf "center: %s\nweight: %g\n" (Point.to_string r.Boxd.point)
        r.Boxd.value;
      0)

let box_cmd =
  let widths =
    Arg.(
      non_empty
      & opt (list float) []
      & info [ "widths" ] ~docv:"W1,W2,..." ~doc:"Box side lengths (one per dimension).")
  in
  Cmd.v
    (Cmd.info "box" ~doc:"Exact d-box MaxRS (candidate recursion).")
    Term.(const box $ input_arg $ widths $ unweighted_arg)

let colored_rect input width height epsilon exact seed =
  guarded (fun () ->
  let pts, colors = Points_io.load_colored input in
  if exact then begin
    let r = Colored_rect2d.max_colored ~width ~height pts ~colors in
    Printf.printf "center: (%g, %g)\ndistinct colors: %d\n" r.Colored_rect2d.x
      r.Colored_rect2d.y r.Colored_rect2d.value
  end
  else begin
    let r =
      Approx_colored_rect.solve ~width ~height ~epsilon ~seed pts ~colors
    in
    Printf.printf "center: (%g, %g)\ndistinct colors: %d (estimate %d)\n"
      r.Approx_colored_rect.x r.Approx_colored_rect.y
      r.Approx_colored_rect.depth r.Approx_colored_rect.estimate;
    match r.Approx_colored_rect.strategy with
    | Approx_colored_rect.Exact_small ->
        print_endline "strategy: exact (small opt)"
    | Approx_colored_rect.Sampled { lambda; colors_sampled; disks_sampled } ->
        Printf.printf
          "strategy: sampled colors (lambda=%.3f, %d colors, %d points)\n"
          lambda colors_sampled disks_sampled
  end;
  0)

let colored_rect_cmd =
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ] ~doc:"Run the exact O(n^2 log n) solver instead of \
                               the color-sampling pipeline.")
  in
  Cmd.v
    (Cmd.info "colored-rect"
       ~doc:
         "Colored rectangle MaxRS ([ZGH+22] problem): exact solver or the \
          open-problem color-sampling pipeline.")
    Term.(
      const colored_rect $ input_arg $ width_arg $ height_arg $ epsilon_arg
      $ exact $ seed_arg)

let batched_disks input radii unweighted =
  guarded (fun () ->
      let pts = load_weighted input ~unweighted in
      let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) pts in
      let radii = Array.of_list radii in
      let results = Batched2d.disks ~radii pts3 in
      Array.iteri
        (fun i r ->
          Printf.printf "r=%g: weight %g at (%g, %g)\n" radii.(i)
            r.Disk2d.value r.Disk2d.x r.Disk2d.y)
        results;
      0)

let batched_disks_cmd =
  let radii =
    Arg.(
      non_empty
      & opt (list float) []
      & info [ "radii" ] ~docv:"R1,R2,..." ~doc:"Disk radii.")
  in
  Cmd.v
    (Cmd.info "batched-disks"
       ~doc:"Batched disk MaxRS, O(mn^2) (Section 7 upper bound).")
    Term.(const batched_disks $ input_arg $ radii $ unweighted_arg)

let dynamic input radius epsilon shifts seed dim verify =
  guarded (fun () ->
  let ops = Trace.load input in
  let cfg = Config.make ~epsilon ~max_grid_shifts:shifts ~seed () in
  if verify then begin
    let steps = Trace.replay_with_check ~cfg ~radius ~dim ops in
    List.iter
      (fun ((s : Trace.step), verified) ->
        match s.Trace.best with
        | Some (p, v) ->
            Printf.printf "op %d: live=%d best=%g at %s (verified depth %g)\n"
              s.Trace.op_index s.Trace.live v (Point.to_string p) verified
        | None ->
            Printf.printf "op %d: live=%d best=-\n" s.Trace.op_index
              s.Trace.live)
      steps
  end
  else begin
    let dyn = Dynamic.create ~cfg ~radius ~dim () in
    let steps = Trace.replay dyn ops in
    List.iter
      (fun (s : Trace.step) ->
        match s.Trace.best with
        | Some (p, v) ->
            Printf.printf "op %d: live=%d best=%g at %s\n" s.Trace.op_index
              s.Trace.live v (Point.to_string p)
        | None ->
            Printf.printf "op %d: live=%d best=-\n" s.Trace.op_index
              s.Trace.live)
      steps
  end;
  0)

let dynamic_cmd =
  let dim =
    Arg.(value & opt int 2 & info [ "dim" ] ~docv:"D" ~doc:"Dimension.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Recompute the true depth of every reported placement.")
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:
         "Replay a dynamic trace file (+/w/-/? lines) through the Theorem \
          1.1 structure.")
    Term.(
      const dynamic $ input_arg $ radius_arg $ epsilon_arg $ shifts_arg
      $ seed_arg $ dim $ verify)

(* ------------------------------------------------------------------ *)
(* session: crash-safe dynamic structure (WAL + snapshots + recovery) *)

let session wal input snapshot_every fsync_kind fsync_interval linger
    final_snapshot radius epsilon shifts seed dim shards domains stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let fsync =
        match fsync_kind with
        | `Always -> Wal.Always
        | `Never -> Wal.Never
        | `Interval -> Wal.Interval (Int.max 1 fsync_interval)
      in
      let cfg = Config.make ~epsilon ~max_grid_shifts:shifts ~seed () in
      match
        Session.open_ ~wal ?shards ?domains ~snapshot_every ~fsync ~dim ~radius
          ~cfg ()
      with
      | Error msg ->
          Printf.eprintf "maxrs: %s\n" msg;
          exit_invalid_input
      | Ok sess ->
          (* Handlers only set a flag; the op loop and the linger loop
             poll it, so the WAL is never torn by our own signal exit —
             we stop between ops, flush, and leave with code 5. *)
          let interrupted = ref false in
          let handler = Sys.Signal_handle (fun _ -> interrupted := true) in
          let prev_int = Sys.signal Sys.sigint handler in
          let prev_term = Sys.signal Sys.sigterm handler in
          Fun.protect
            ~finally:(fun () ->
              Session.flush sess;
              Sys.set_signal Sys.sigint prev_int;
              Sys.set_signal Sys.sigterm prev_term)
            (fun () ->
              (* Flushed eagerly so a supervisor watching the stream sees
                 the session come up before it starts lingering. *)
              (match Session.shards sess with
              | 1 -> ()
              | k -> Printf.printf "session: sharded over %d WALs\n" k);
              (match Session.recovery sess with
              | None -> Printf.printf "session: fresh log at %s\n%!" wal
              | Some r ->
                  Printf.printf
                    "session: recovered seq=%d (snapshot=%s, replayed=%d, \
                     truncated=%dB%s%s)\n"
                    r.Session.seq
                    (match r.Session.snapshot_seq with
                    | Some s -> string_of_int s
                    | None -> "none")
                    r.Session.replayed r.Session.truncated_bytes
                    (match r.Session.corruption with
                    | Some c -> ", " ^ c
                    | None -> "")
                    (if r.Session.wal_rewritten then ", log rewritten" else "");
                  flush stdout);
              let interrupted_exit () =
                Session.flush sess;
                Session.close sess;
                Printf.eprintf "maxrs: interrupted; WAL flushed at seq=%d\n"
                  (Session.seq sess);
                exit_interrupted
              in
              try
                (match input with
                | None -> ()
                | Some path ->
                    let ops = Trace.load path in
                    Array.iteri
                      (fun i op ->
                        if !interrupted then raise Stdlib.Exit;
                        match op with
                        | Trace.Insert (p, w) ->
                            ignore
                              (Session.insert sess ~weight:w p : Dynamic.handle)
                        | Trace.Delete h -> (
                            try Session.delete sess (Dynamic.handle_of_id h)
                            with Not_found ->
                              Guard.ok_exn
                                (Guard.invalid ~index:i ~field:"delete"
                                   (Printf.sprintf "handle %d is not live" h)))
                        | Trace.Query -> (
                            match Session.best sess with
                            | Some (p, v) ->
                                Printf.printf "op %d: live=%d best=%g at %s\n"
                                  i (Session.size sess) v (Point.to_string p)
                            | None ->
                                Printf.printf "op %d: live=%d best=-\n" i
                                  (Session.size sess)))
                      ops);
                let t0 = Unix.gettimeofday () in
                while (not !interrupted) && Unix.gettimeofday () -. t0 < linger
                do
                  Unix.sleepf 0.02
                done;
                if !interrupted then raise Stdlib.Exit;
                if final_snapshot then Session.snapshot_now sess;
                (match Session.best sess with
                | Some (p, v) ->
                    Printf.printf "final: seq=%d live=%d best=%g at %s\n"
                      (Session.seq sess) (Session.size sess) v
                      (Point.to_string p)
                | None ->
                    Printf.printf "final: seq=%d live=%d best=-\n"
                      (Session.seq sess) (Session.size sess));
                Session.close sess;
                0
              with Stdlib.Exit -> interrupted_exit ()))

let session_cmd =
  let wal =
    Arg.(
      required
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead log path. If the file exists the session recovers \
             from it (newest valid snapshot plus WAL replay) and continues; \
             its recorded dimension/radius/config win over the flags below.")
  in
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "i"; "input" ] ~docv:"FILE"
          ~doc:
            "Trace file of +/w/-/? ops to feed the session. Unlike \
             $(b,dynamic), $(b,- i) deletes the point created by the i-th \
             insert (handle i), which stays meaningful across restarts.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 1000
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Ops between automatic snapshots (0 disables them).")
  in
  let fsync_kind =
    Arg.(
      value
      & opt (enum [ ("always", `Always); ("interval", `Interval); ("never", `Never) ]) `Interval
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL durability: $(b,always) fsyncs every append, $(b,interval) \
             every $(b,--fsync-interval) appends, $(b,never) only on exit.")
  in
  let fsync_interval =
    Arg.(
      value & opt int 64
      & info [ "fsync-interval" ] ~docv:"K"
          ~doc:"Appends between fsyncs under $(b,--fsync interval).")
  in
  let linger =
    Arg.(
      value & opt float 0.
      & info [ "linger" ] ~docv:"SECS"
          ~doc:
            "Stay alive this long after processing the trace (for driving \
             the session with signals).")
  in
  let final_snapshot =
    Arg.(
      value & flag
      & info [ "final-snapshot" ]
          ~doc:"Write a full snapshot before exiting cleanly.")
  in
  let dim =
    Arg.(value & opt int 2 & info [ "dim" ] ~docv:"D" ~doc:"Dimension.")
  in
  let shards =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Shard the session over $(docv) per-shard WALs (answers stay \
             bit-identical to a solo session; recovery scans the shard logs \
             in parallel). An existing layout at $(b,--wal) reopens with its \
             on-disk shard count regardless of this flag.")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker-pool bound for a sharded session (default: \
             $(b,MAXRS_DOMAINS) or the core count).")
  in
  Cmd.v
    (Cmd.info "session" ~exits:resilience_exits
       ~doc:
         "Crash-safe dynamic MaxRS session: every update is journaled to a \
          checksummed write-ahead log, snapshots are written atomically, and \
          restarting on the same $(b,--wal) recovers the structure \
          bit-identically to the surviving op prefix.")
    Term.(
      const session $ wal $ input $ snapshot_every $ fsync_kind
      $ fsync_interval $ linger $ final_snapshot $ radius_arg $ epsilon_arg
      $ shifts_arg $ seed_arg $ dim $ shards $ domains $ stats_arg)

(* ------------------------------------------------------------------ *)
(* depth-map: rasterize the (weighted or colored) depth function *)

let depth_map input radius cells colored out =
  let emit oc pts eval =
    let xs = Array.map fst pts and ys = Array.map snd pts in
    let min_a a = Array.fold_left Float.min a.(0) a in
    let max_a a = Array.fold_left Float.max a.(0) a in
    let x0 = min_a xs -. radius and x1 = max_a xs +. radius in
    let y0 = min_a ys -. radius and y1 = max_a ys +. radius in
    let fx = (x1 -. x0) /. float_of_int cells in
    let fy = (y1 -. y0) /. float_of_int cells in
    Printf.fprintf oc "# x,y,depth (grid %dx%d over [%g,%g]x[%g,%g])\n" cells
      cells x0 x1 y0 y1;
    for i = 0 to cells - 1 do
      for j = 0 to cells - 1 do
        let x = x0 +. ((float_of_int i +. 0.5) *. fx) in
        let y = y0 +. ((float_of_int j +. 0.5) *. fy) in
        Printf.fprintf oc "%g,%g,%g\n" x y (eval x y)
      done
    done
  in
  guarded (fun () ->
      with_out out (fun oc ->
          if colored then begin
            let pts, colors = Points_io.load_colored input in
            emit oc pts (fun x y ->
                float_of_int
                  (Colored_disk2d.colored_depth_at ~radius pts ~colors x y))
          end
          else begin
            let wpts = load_weighted input ~unweighted:false in
            let pts = Array.map (fun (p, _) -> (p.(0), p.(1))) wpts in
            let pts3 = Array.map (fun (p, w) -> (p.(0), p.(1), w)) wpts in
            emit oc pts (fun x y -> Disk2d.depth_at ~radius pts3 x y)
          end);
      0)

let depth_map_cmd =
  let cells =
    Arg.(
      value & opt int 64
      & info [ "cells" ] ~docv:"K" ~doc:"Raster resolution (K x K).")
  in
  let colored_flag =
    Arg.(
      value & flag
      & info [ "colored" ] ~doc:"Input is colored (x,y,color); plot \
                                 distinct-color depth.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV (default stdout).")
  in
  Cmd.v
    (Cmd.info "depth-map"
       ~doc:
         "Rasterize the depth function of the dual disks over the data's \
          bounding box — a hotspot heat map as x,y,depth CSV.")
    Term.(
      const depth_map $ input_arg $ radius_arg $ cells $ colored_flag $ out)

(* ------------------------------------------------------------------ *)
(* convolution demo *)

let convolution n seed via =
  let rng = Rng.create seed in
  let a = Array.init n (fun _ -> Rng.int rng 200 - 100) in
  let b = Array.init n (fun _ -> Rng.int rng 200 - 100) in
  let reference = Convolution.min_plus a b in
  let result =
    match via with
    | "naive" -> reference
    | "maxrs" ->
        Reductions.min_plus_via_batched_maxrs
          ~oracle:Reductions.default_batched_maxrs_oracle a b
    | "bsei" -> Bsei.min_plus_via_bsei a b
    | v -> failwith (Printf.sprintf "unknown oracle %S (naive|maxrs|bsei)" v)
  in
  Printf.printf "n=%d via %s: %s\n" n via
    (if result = reference then "matches naive (min,+)-convolution"
     else "MISMATCH");
  if result = reference then 0 else 1

let convolution_cmd =
  let n = Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc:"Length.") in
  let via =
    Arg.(
      value & opt string "maxrs"
      & info [ "via" ] ~docv:"ORACLE" ~doc:"naive | maxrs | bsei.")
  in
  Cmd.v
    (Cmd.info "convolution"
       ~doc:"Run (min,+)-convolution through a hardness-reduction chain.")
    Term.(const convolution $ n $ seed_arg $ via)

(* ------------------------------------------------------------------ *)
(* query: the RMSQ read tier over a durable session's WAL *)

let query wal from_snapshot range len top verify stats =
  with_stats stats @@ fun () ->
  guarded (fun () ->
      let lens = match len with Some l -> [| l |] | None -> [||] in
      let t0 = Unix.gettimeofday () in
      let compiled =
        if from_snapshot then
          (* strictly the newest decodable snapshot — no WAL replay *)
          match Index_builder.of_snapshot ~lens ~wal () with
          | Error msg ->
              Printf.eprintf "maxrs: %s\n" msg;
              None
          | Ok e -> Some (e.Qepoch.built_seq, e.Qepoch.index)
        else
          (* full crash recovery (snapshot + WAL replay), then compile *)
          match Session.open_ ~wal () with
          | Error msg ->
              Printf.eprintf "maxrs: cannot open session: %s\n" msg;
              None
          | Ok sess ->
              let seq = Session.seq sess in
              let st = Session.state sess in
              Session.close sess;
              Some (seq, Rmsq.of_state ~lens st)
      in
      match compiled with
      | None -> exit_invalid_input
      | Some (seq, t) ->
          let build_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          Printf.printf "index: n=%d seq=%d build=%.1fms bits/point=%.1f\n"
            (Rmsq.n t) seq build_ms (Rmsq.bits_per_point t);
          let print_seg what = function
            | None -> Printf.printf "%s: empty\n" what
            | Some s ->
                Printf.printf "%s: elements [%d..%d] sum=%g (x in [%g, %g])\n"
                  what s.Rmsq.s_lo s.Rmsq.s_hi s.Rmsq.s_sum
                  (Rmsq.coord t s.Rmsq.s_lo)
                  (Rmsq.coord t s.Rmsq.s_hi)
          in
          if top || (range = None && len = None) then
            print_seg "top" (Rmsq.top_segment t);
          (match range with
          | None -> ()
          | Some (lo, hi) ->
              print_seg
                (Printf.sprintf "range [%g, %g]" lo hi)
                (Rmsq.max_sum_in_coords t ~lo ~hi));
          (match len with
          | None -> ()
          | Some l -> (
              match Rmsq.interval t ~len:l with
              | Some p ->
                  Printf.printf "interval len=%g: lo=%g value=%g (compiled)\n"
                    l p.Interval1d.lo p.Interval1d.value
              | None ->
                  let p = Rmsq.interval_sweep t ~len:l in
                  Printf.printf "interval len=%g: lo=%g value=%g (sweep)\n" l
                    p.Interval1d.lo p.Interval1d.value));
          if not verify then 0
          else begin
            (* Differential audit: indexed answers vs the index-free
               reference on a deterministic family of overlapping
               ranges (plus the compiled lengths vs the sweep), all
               required bit-identical. *)
            let n = Rmsq.n t in
            let bits = Int64.bits_of_float in
            let checked = ref 0 and failed = ref 0 in
            let check_range ~lo ~hi =
              incr checked;
              let got = Rmsq.max_sum_in_range t ~lo ~hi in
              let want = Rmsq.range_ref t ~lo ~hi in
              let same =
                match (got, want) with
                | None, None -> true
                | Some g, Some w ->
                    g.Rmsq.s_lo = w.Rmsq.s_lo
                    && g.Rmsq.s_hi = w.Rmsq.s_hi
                    && bits g.Rmsq.s_sum = bits w.Rmsq.s_sum
                | _ -> false
              in
              if not same then begin
                incr failed;
                Printf.eprintf "maxrs: verify FAILED on range [%d, %d]\n" lo hi
              end
            in
            let step = Int.max 1 (n / 16) in
            let i = ref 0 in
            while !i < n do
              let j = ref !i in
              while !j < n do
                check_range ~lo:!i ~hi:!j;
                j := !j + step
              done;
              check_range ~lo:!i ~hi:(n - 1);
              i := !i + step
            done;
            Array.iter
              (fun l ->
                incr checked;
                match Rmsq.interval t ~len:l with
                | None -> incr failed
                | Some p ->
                    let s = Rmsq.interval_sweep t ~len:l in
                    if
                      bits p.Interval1d.value <> bits s.Interval1d.value
                      || bits p.Interval1d.lo <> bits s.Interval1d.lo
                    then begin
                      incr failed;
                      Printf.eprintf "maxrs: verify FAILED on len=%g\n" l
                    end)
              (Rmsq.lens t);
            if !failed = 0 then begin
              Printf.printf "verify: OK (%d queries bit-identical)\n" !checked;
              0
            end
            else begin
              Printf.eprintf "maxrs: verify: %d/%d queries diverged\n" !failed
                !checked;
              1
            end
          end)

let query_cmd =
  let wal =
    Arg.(
      required
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "WAL of the durable session to compile the index from (the \
             session is recovered exactly as $(b,session) would, then \
             compiled and closed).")
  in
  let from_snapshot =
    Arg.(
      value & flag
      & info [ "from-snapshot" ]
          ~doc:
            "Compile strictly from the newest decodable snapshot sidecar \
             (no WAL replay) — the builder's snapshot path.")
  in
  let range =
    Arg.(
      value
      & opt (some (pair ~sep:':' float float)) None
      & info [ "range" ] ~docv:"LO:HI"
          ~doc:
            "Answer the max-sum segment over points with coordinate in \
             [LO, HI] (closed).")
  in
  let len =
    Arg.(
      value
      & opt (some float) None
      & info [ "len" ] ~docv:"L"
          ~doc:
            "Also answer the fixed-length interval question for length \
             $(docv) (compiled into the index at build time).")
  in
  let top =
    Arg.(
      value & flag
      & info [ "top" ]
          ~doc:
            "Print the global top segment (default when no other question \
             is asked).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Audit the index: answer a deterministic family of overlapping \
             ranges both through the index and through the index-free \
             reference scan and require bit-identical results; nonzero exit \
             on any divergence.")
  in
  Cmd.v
    (Cmd.info "query" ~exits:resilience_exits
       ~doc:
         "Compile the succinct RMSQ read-tier index from a durable \
          session's WAL/snapshots and answer arbitrary-range max-sum \
          queries in O(log n), bit-identical to the reference sweep.")
    Term.(
      const query $ wal $ from_snapshot $ range $ len $ top $ verify
      $ stats_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "maximum range sum algorithms (PODS 2025 reproduction)" in
  let info = Cmd.info "maxrs" ~version:"1.0.0" ~doc ~exits:resilience_exits in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            solve_cmd;
            static_cmd;
            colored_cmd;
            exact_disk_cmd;
            output_sensitive_cmd;
            approx_colored_cmd;
            batched_cmd;
            bsei_cmd;
            convolution_cmd;
            rect_cmd;
            box_cmd;
            colored_rect_cmd;
            batched_disks_cmd;
            dynamic_cmd;
            session_cmd;
            query_cmd;
            depth_map_cmd;
          ]))
