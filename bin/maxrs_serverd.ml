(* maxrs_serverd — the MaxRS network daemon and its load/chaos tooling.

   Subcommands:
     serve   run the daemon (SIGTERM/SIGINT = graceful drain, exit 0)
     ping    round-trip check against a running daemon
     stats   print a daemon's health counters and latency quantiles
     load    open-loop load generator (JSON report on stdout)
     proxy   deterministic fault-injecting proxy (chaos harness)

   Try:
     maxrs_serverd serve --addr unix:/tmp/maxrs.sock --wal /tmp/maxrs.wal &
     maxrs_serverd ping --addr unix:/tmp/maxrs.sock
     maxrs_serverd load --addr unix:/tmp/maxrs.sock --rate 200 --duration 5 *)

open Cmdliner
module Netio = Maxrs_server.Netio
module Proto = Maxrs_server.Proto
module Server = Maxrs_server.Server
module Client = Maxrs_server.Client
module Loadgen = Maxrs_server.Loadgen
module Net_faults = Maxrs_server.Net_faults
module Wal = Maxrs_durable.Wal
module Session = Maxrs_durable.Session

let exit_bad_addr = 2
let exit_server_error = 3

let addr_arg =
  let parse s =
    match Netio.addr_of_string s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Netio.addr_to_string a))

let addr_t =
  Arg.(
    required
    & opt (some addr_arg) None
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:
          "Listen/connect address: $(b,unix:/path/to.sock) or \
           $(b,host:port).")

(* ------------------------------------------------------------------ *)
(* serve *)

let serve addr workers queue_cap max_conns max_frame idle_timeout read_deadline
    default_deadline drain_grace wal fsync_kind fsync_interval snapshot_every
    shards domains =
  let fsync =
    match fsync_kind with
    | `Always -> Wal.Always
    | `Never -> Wal.Never
    | `Interval -> Wal.Interval (Int.max 1 fsync_interval)
  in
  let cfg =
    {
      (Server.default_config addr) with
      Server.workers;
      queue_cap;
      max_conns;
      max_frame;
      idle_timeout;
      read_deadline;
      default_deadline;
      drain_grace;
      wal;
      fsync;
      snapshot_every;
      shards;
      domains;
    }
  in
  match Server.start cfg with
  | Error m ->
      Printf.eprintf "maxrs_serverd: %s\n" m;
      exit_server_error
  | Ok t ->
      (match Server.session t with
      | Some sess ->
          let recovered =
            match Session.recovery sess with
            | Some r ->
                Printf.sprintf " (recovered: %s)"
                  (if r.Session.wal_rewritten then "log rewritten" else "clean")
            | None -> ""
          in
          let sharded =
            match Session.shards sess with
            | 1 -> ""
            | k -> Printf.sprintf " shards=%d" k
          in
          Printf.printf "session: %s seq=%d size=%d%s%s\n"
            (Session.wal_path sess) (Session.seq sess) (Session.size sess)
            sharded recovered
      | None -> ());
      (* The line tests and scripts poll for: the socket is live. *)
      Printf.printf "listening on %s\n%!" (Netio.addr_to_string addr);
      let drain = ref false in
      let on_signal _ = drain := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      (* Poll rather than block so signal handlers run on this thread
         promptly; the daemon's own threads do the work. *)
      while not !drain do
        Thread.delay 0.05
      done;
      prerr_endline "maxrs_serverd: draining";
      Server.begin_drain t;
      Server.wait t;
      let s = Server.stats t in
      Printf.eprintf
        "maxrs_serverd: drained (completed=%d degraded=%d rejected=%d)\n"
        s.Proto.completed
        (s.Proto.degraded + s.Proto.partial)
        s.Proto.rejected;
      0

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker threads executing solves.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission-control bound: requests beyond $(docv) queued are \
             rejected with a structured Overloaded reply.")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N" ~doc:"Refuse connections beyond $(docv).")
  in
  let max_frame =
    Arg.(
      value
      & opt int (1 lsl 23)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Reject request frames larger than $(docv).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections silent for $(docv).")
  in
  let read_deadline =
    Arg.(
      value & opt float 10.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "A started frame must complete within $(docv) (slow-loris \
             guard).")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Compute budget for requests that carry none; on expiry the \
             answer degrades to the approximation and is marked Degraded.")
  in
  let drain_grace =
    Arg.(
      value & opt float 2.
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM, in-flight work gets $(docv) to finish before \
             budgets force degradation.")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Back insert/delete/query requests with the durable session at \
             $(docv) (created or recovered).")
  in
  let fsync_kind =
    Arg.(
      value
      & opt (enum [ ("always", `Always); ("interval", `Interval); ("never", `Never) ]) `Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL durability: $(b,always) fsyncs every append (acked implies \
             durable), $(b,interval) every $(b,--fsync-interval) appends, \
             $(b,never) only on drain.")
  in
  let fsync_interval =
    Arg.(
      value & opt int 64
      & info [ "fsync-interval" ] ~docv:"N" ~doc:"Appends between fsyncs.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 1000
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Session ops between automatic snapshots (0 disables).")
  in
  let shards =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Shard the session over $(docv) per-shard WALs with parallel \
             recovery. An existing layout at $(b,--wal) reopens with its \
             on-disk shard count regardless of this flag.")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker-pool bound for a sharded session (default: \
             $(b,MAXRS_DOMAINS) or the core count).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the MaxRS daemon.")
    Term.(
      const serve $ addr_t $ workers $ queue_cap $ max_conns $ max_frame
      $ idle_timeout $ read_deadline $ default_deadline $ drain_grace $ wal
      $ fsync_kind $ fsync_interval $ snapshot_every $ shards $ domains)

(* ------------------------------------------------------------------ *)
(* ping / stats *)

let ping addr =
  let c = Client.create addr in
  match Client.ping c with
  | Ok () ->
      print_endline "pong";
      0
  | Error e ->
      Printf.eprintf "maxrs_serverd: %s\n" (Client.error_to_string e);
      exit_server_error

let ping_cmd =
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip check against a running daemon.")
    Term.(const ping $ addr_t)

let stats addr =
  let c = Client.create addr in
  match Client.stats c with
  | Error e ->
      Printf.eprintf "maxrs_serverd: %s\n" (Client.error_to_string e);
      exit_server_error
  | Ok s ->
      Printf.printf
        "uptime_s: %.1f\n\
         conns_active: %d\n\
         queue_depth: %d\n\
         inflight: %d\n\
         accepted: %d\n\
         rejected: %d\n\
         completed: %d\n\
         degraded: %d\n\
         partial: %d\n\
         invalid: %d\n\
         protocol_errors: %d\n\
         timeouts: %d\n\
         disconnects: %d\n\
         p50_us: %d\n\
         p99_us: %d\n"
        s.Proto.uptime_s s.Proto.conns_active s.Proto.queue_depth
        s.Proto.inflight s.Proto.accepted s.Proto.rejected s.Proto.completed
        s.Proto.degraded s.Proto.partial s.Proto.invalid
        s.Proto.protocol_errors s.Proto.timeouts s.Proto.disconnects
        s.Proto.p50_us s.Proto.p99_us;
      0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print a running daemon's health counters.")
    Term.(const stats $ addr_t)

(* ------------------------------------------------------------------ *)
(* load *)

let load addr rate duration senders seed q_weight i_weight s_weight solve_n =
  let mix =
    {
      Loadgen.query = q_weight;
      insert = i_weight;
      solve = s_weight;
      solve_n;
    }
  in
  let r = Loadgen.run ~senders ~seed ~mix ~addr ~rate ~duration () in
  print_endline (Loadgen.report_to_json r);
  if r.Loadgen.net_errors > 0 then exit_server_error else 0

let load_cmd =
  let rate =
    Arg.(
      value & opt float 100.
      & info [ "rate" ] ~docv:"RPS" ~doc:"Offered load (open loop).")
  in
  let duration =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Length of the run.")
  in
  let senders =
    Arg.(
      value & opt int 4
      & info [ "senders" ] ~docv:"N" ~doc:"Concurrent sender threads.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Workload seed (arrivals and request mix).")
  in
  let q_weight =
    Arg.(
      value & opt float 0.6
      & info [ "query-weight" ] ~docv:"W" ~doc:"Mix weight of query requests.")
  in
  let i_weight =
    Arg.(
      value & opt float 0.3
      & info [ "insert-weight" ] ~docv:"W" ~doc:"Mix weight of inserts.")
  in
  let s_weight =
    Arg.(
      value & opt float 0.1
      & info [ "solve-weight" ] ~docv:"W" ~doc:"Mix weight of solves.")
  in
  let solve_n =
    Arg.(
      value & opt int 400
      & info [ "solve-n" ] ~docv:"N" ~doc:"Points per solve request.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Open-loop load generator; JSON report on stdout.")
    Term.(
      const load $ addr_t $ rate $ duration $ senders $ seed $ q_weight
      $ i_weight $ s_weight $ solve_n)

(* ------------------------------------------------------------------ *)
(* proxy *)

let proxy listen upstream faults =
  let cfg =
    match faults with
    | Some s -> Net_faults.of_string s
    | None -> Net_faults.of_env ()
  in
  match cfg with
  | None ->
      Printf.eprintf
        "maxrs_serverd: no fault config (--faults SEED:RATE or \
         MAXRS_NET_FAULTS)\n";
      exit_bad_addr
  | Some cfg -> (
      match Net_faults.start ~listen ~upstream cfg with
      | Error m ->
          Printf.eprintf "maxrs_serverd: %s\n" m;
          exit_server_error
      | Ok p ->
          Printf.printf "proxy listening on %s (upstream %s, seed=%d rate=%g)\n%!"
            (Netio.addr_to_string listen)
            (Netio.addr_to_string upstream)
            cfg.Net_faults.seed cfg.Net_faults.rate;
          let stop = ref false in
          let on_signal _ = stop := true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          while not !stop do
            Thread.delay 0.05
          done;
          Net_faults.shutdown p;
          Printf.eprintf "maxrs_serverd: proxy injected %d faults\n"
            (Net_faults.injected_count p);
          0)

let proxy_cmd =
  let listen =
    Arg.(
      required
      & opt (some addr_arg) None
      & info [ "listen" ] ~docv:"ADDR" ~doc:"Proxy listen address.")
  in
  let upstream =
    Arg.(
      required
      & opt (some addr_arg) None
      & info [ "upstream" ] ~docv:"ADDR" ~doc:"Daemon address to relay to.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE"
          ~doc:
            "Deterministic fault schedule (default: $(b,MAXRS_NET_FAULTS)).")
  in
  Cmd.v
    (Cmd.info "proxy" ~doc:"Deterministic fault-injecting proxy.")
    Term.(const proxy $ listen $ upstream $ faults)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "maxrs_serverd" ~version:"%%VERSION%%"
      ~doc:"Fault-tolerant MaxRS network daemon and load/chaos tooling."
  in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd; ping_cmd; stats_cmd; load_cmd; proxy_cmd ]))
